// Package dddg builds dynamic data dependence graphs from instruction
// traces, following the construction the paper adapts from Holewinski et al.
// (§III-B, [28]): vertices are the values of locations (registers/memory) at
// specific versions, edges are the operations that transform input values
// into output values. Root nodes are the inputs of a code region, leaf nodes
// its outputs, everything else internal.
package dddg

import (
	"fmt"
	"sort"
	"strings"

	"fliptracker/internal/ir"
	"fliptracker/internal/trace"
)

// NodeID indexes Graph.Nodes.
type NodeID int32

// Node is one value-version of a location.
type Node struct {
	ID  NodeID
	Loc trace.Loc
	// Val is the value the location held at this version.
	Val ir.Word
	Typ ir.Type
	// RecIndex is the trace record (absolute index) that produced this
	// version, or -1 for external versions that flowed in from before the
	// span (region inputs).
	RecIndex int
	// External marks root nodes: values defined outside the span.
	External bool
}

// Edge is a data dependence: the operation at SID consumed From and produced
// To.
type Edge struct {
	From, To NodeID
	Op       ir.Opcode
	SID      int32
}

// Graph is the DDDG of one code-region instance (a trace span).
type Graph struct {
	Nodes []Node
	Edges []Edge

	// final maps each location to its last version in the span.
	final map[trace.Loc]NodeID
	// externals maps locations to their external (root) node.
	externals map[trace.Loc]NodeID
	outDegree []int32
	span      trace.Span
	src       *trace.Trace
}

// Build constructs the DDDG for the given span of t. Records outside the
// span are ignored except that OutputLocs (below) can look past the end.
func Build(t *trace.Trace, span trace.Span) *Graph {
	g := &Graph{
		final:     make(map[trace.Loc]NodeID),
		externals: make(map[trace.Loc]NodeID),
		span:      span,
		src:       t,
	}
	for i := span.Start; i < span.End && i < t.Recs.Len(); i++ {
		r := t.Recs.At(i)
		if r.Op == ir.OpRegionEnter || r.Op == ir.OpRegionExit {
			continue
		}
		// Resolve sources to current versions, creating external roots
		// for locations first seen as sources.
		var srcIDs [2]NodeID
		for s := 0; s < int(r.NSrc); s++ {
			loc := r.Src[s]
			if loc == 0 {
				srcIDs[s] = -1
				continue
			}
			id, ok := g.final[loc]
			if !ok {
				id = g.addNode(Node{Loc: loc, Val: r.SrcVal[s], Typ: r.Typ, RecIndex: -1, External: true})
				g.externals[loc] = id
				g.final[loc] = id
			}
			srcIDs[s] = id
		}
		if !r.HasDst() {
			// Pure consumers (condbr) still count as uses.
			for s := 0; s < int(r.NSrc); s++ {
				if srcIDs[s] >= 0 {
					g.outDegree[srcIDs[s]]++
				}
			}
			continue
		}
		dst := g.addNode(Node{Loc: r.Dst, Val: r.DstVal, Typ: r.Typ, RecIndex: i})
		for s := 0; s < int(r.NSrc); s++ {
			if srcIDs[s] < 0 {
				continue
			}
			g.Edges = append(g.Edges, Edge{From: srcIDs[s], To: dst, Op: r.Op, SID: r.SID})
			g.outDegree[srcIDs[s]]++
		}
		g.final[r.Dst] = dst
	}
	return g
}

func (g *Graph) addNode(n Node) NodeID {
	n.ID = NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, n)
	g.outDegree = append(g.outDegree, 0)
	return n.ID
}

// Span returns the trace span the graph was built from.
func (g *Graph) Span() trace.Span { return g.span }

// Source returns the trace the graph was built from.
func (g *Graph) Source() *trace.Trace { return g.src }

// Inputs returns the root nodes: location versions that flowed into the span
// from outside. These are the code region's input variables (§III-B: "root
// nodes represent inputs").
func (g *Graph) Inputs() []Node {
	var out []Node
	for _, n := range g.Nodes {
		if n.External {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Leaves returns nodes never consumed within the span ("leaf nodes represent
// outputs"). Restricting to memory locations gives the region's candidate
// output variables; registers that leak across region boundaries are included
// so callers can decide.
func (g *Graph) Leaves() []Node {
	var out []Node
	for i, n := range g.Nodes {
		if !n.External && g.outDegree[i] == 0 {
			out = append(out, n)
		}
	}
	return out
}

// FinalValue returns the last value a location held within the span.
func (g *Graph) FinalValue(loc trace.Loc) (ir.Word, bool) {
	id, ok := g.final[loc]
	if !ok {
		return 0, false
	}
	return g.Nodes[id].Val, true
}

// WrittenMemLocs returns every memory location written in the span, sorted.
func (g *Graph) WrittenMemLocs() []trace.Loc {
	seen := map[trace.Loc]bool{}
	for _, n := range g.Nodes {
		if !n.External && n.Loc.IsMem() {
			seen[n.Loc] = true
		}
	}
	return sortedLocs(seen)
}

// InputMemLocs returns every memory location read-before-written in the span
// (the true region inputs among globals), sorted.
func (g *Graph) InputMemLocs() []trace.Loc {
	seen := map[trace.Loc]bool{}
	for loc := range g.externals {
		if loc.IsMem() {
			seen[loc] = true
		}
	}
	return sortedLocs(seen)
}

// OutputLocs returns the memory locations written in the span that are read
// again after it — the paper's definition of output variables ("written in
// the code region and read after the code region", §III-A).
func (g *Graph) OutputLocs(t *trace.Trace) []trace.Loc {
	written := map[trace.Loc]bool{}
	for _, loc := range g.WrittenMemLocs() {
		written[loc] = true
	}
	out := map[trace.Loc]bool{}
	for i := g.span.End; i < t.Recs.Len(); i++ {
		r := t.Recs.At(i)
		for s := 0; s < int(r.NSrc); s++ {
			if written[r.Src[s]] {
				out[r.Src[s]] = true
				delete(written, r.Src[s]) // first touch decides
			}
		}
		if r.HasDst() {
			delete(written, r.Dst) // overwritten before any read
		}
	}
	return sortedLocs(out)
}

func sortedLocs(set map[trace.Loc]bool) []trace.Loc {
	out := make([]trace.Loc, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OpSignature returns the sequence of static instruction ids executed in the
// span. Comparing signatures between a faulty and a fault-free instance
// detects control-flow divergence (§III-B: "detect control flow divergence
// by comparing operations").
func OpSignature(t *trace.Trace, span trace.Span) []int32 {
	var sig []int32
	for i := span.Start; i < span.End && i < t.Recs.Len(); i++ {
		sig = append(sig, t.Recs.SID(i))
	}
	return sig
}

// Diverged compares two spans' operation sequences and returns the first
// position where they differ, or -1 if identical.
func Diverged(a *trace.Trace, sa trace.Span, b *trace.Trace, sb trace.Span) int {
	la, lb := sa.Len(), sb.Len()
	n := la
	if lb < n {
		n = lb
	}
	for i := 0; i < n; i++ {
		if a.Recs.SID(sa.Start+i) != b.Recs.SID(sb.Start+i) {
			return i
		}
	}
	if la != lb {
		return n
	}
	return -1
}

// DOT renders the graph in Graphviz dot format, resolving global-array names
// through prog when non-nil (the paper uses Graphviz for this, §IV-B).
func (g *Graph) DOT(prog *ir.Program, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", name)
	for _, n := range g.Nodes {
		shape := "ellipse"
		if n.External {
			shape = "box"
		} else if g.outDegree[n.ID] == 0 {
			shape = "doublecircle"
		}
		label := trace.Describe(n.Loc, prog)
		var val string
		if n.Typ == ir.F64 {
			val = fmt.Sprintf("%.6g", n.Val.Float())
		} else {
			val = fmt.Sprintf("%d", n.Val.Int())
		}
		fmt.Fprintf(&sb, "  n%d [shape=%s,label=\"%s=%s\"];\n", n.ID, shape, label, val)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%s\"];\n", e.From, e.To, e.Op)
	}
	sb.WriteString("}\n")
	return sb.String()
}
