package dddg

import (
	"testing"
	"testing/quick"

	"fliptracker/internal/interp"
	"fliptracker/internal/ir"
	"fliptracker/internal/trace"
)

// TestGraphInvariants checks structural invariants of DDDGs built from real
// traces: edges reference valid nodes, external nodes have no producer
// record, non-external nodes index a record in the span, and the final-
// version map points at real nodes.
func TestGraphInvariants(t *testing.T) {
	p, tr := buildRegionProg(t)
	r, _ := p.RegionByName("sumreg")
	span, _ := trace.NewSpanIndex(tr).Instance(int32(r.ID), 0)
	g := Build(tr, span)

	for _, e := range g.Edges {
		if e.From < 0 || int(e.From) >= len(g.Nodes) || e.To < 0 || int(e.To) >= len(g.Nodes) {
			t.Fatalf("edge %v out of range", e)
		}
		if g.Nodes[e.To].External {
			t.Fatalf("edge into external node %v", e)
		}
	}
	for _, n := range g.Nodes {
		if n.External && n.RecIndex != -1 {
			t.Errorf("external node %v has a producer record", n)
		}
		if !n.External && (n.RecIndex < span.Start || n.RecIndex >= span.End) {
			t.Errorf("node %v produced outside the span", n)
		}
	}
	for loc, id := range g.final {
		if int(id) >= len(g.Nodes) {
			t.Fatalf("final map for %v out of range", loc)
		}
		if g.Nodes[id].Loc != loc {
			t.Fatalf("final map mismatch for %v", loc)
		}
	}
}

// TestDDDGVersioningProperty: for a random sequence of writes to few
// locations, the final value tracked by the graph matches a direct replay.
func TestDDDGVersioningProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 40 {
			vals = vals[:40]
		}
		p := ir.NewProgram("ver")
		g := p.AllocGlobal("g", 4, ir.F64)
		b := p.NewFunc("main", 0)
		want := map[int64]float64{}
		b.Region("r", func() {
			for i, v := range vals {
				slot := int64(i % 4)
				fv := float64(v)
				b.StoreGI(g, slot, b.ConstF(fv))
				want[slot] = fv
			}
		})
		b.Emit(ir.F64, b.LoadGI(g, 0))
		b.RetVoid()
		b.Done()
		if err := p.Seal(); err != nil {
			return false
		}
		m, _ := interp.NewMachine(p)
		m.Mode = interp.TraceFull
		tr, err := m.Run()
		if err != nil || tr.Status != trace.RunOK {
			return false
		}
		r, _ := p.RegionByName("r")
		span, ok := trace.NewSpanIndex(tr).Instance(int32(r.ID), 0)
		if !ok {
			return false
		}
		graph := Build(tr, span)
		for slot, fv := range want {
			got, ok := graph.FinalValue(trace.MemLoc(g.Addr + slot))
			if !ok || got.Float() != fv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
