package dddg

import (
	"strings"
	"testing"

	"fliptracker/internal/interp"
	"fliptracker/internal/ir"
	"fliptracker/internal/trace"
)

// buildRegionProg builds a program with one region that reads in[0..3],
// accumulates into acc, and writes out[0]; out[0] is read after the region.
func buildRegionProg(t *testing.T) (*ir.Program, *trace.Trace) {
	t.Helper()
	p := ir.NewProgram("regprog")
	in := p.AllocGlobal("in", 4, ir.F64)
	out := p.AllocGlobal("out", 1, ir.F64)
	sink := p.AllocGlobal("sink", 1, ir.F64)
	b := p.NewFunc("main", 0)
	for i := int64(0); i < 4; i++ {
		b.StoreGI(in, i, b.ConstF(float64(i)+1))
	}
	b.Region("sumreg", func() {
		acc := b.ConstF(0)
		b.ForI(0, 4, func(i ir.Reg) {
			b.BinTo(ir.OpFAdd, acc, acc, b.LoadG(in, i))
		})
		b.StoreGI(out, 0, acc)
	})
	// Read out[0] after the region so it is a true output variable.
	b.StoreGI(sink, 0, b.FMul(b.LoadGI(out, 0), b.ConstF(2)))
	b.Emit(ir.F64, b.LoadGI(sink, 0))
	b.RetVoid()
	b.Done()
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	m, err := interp.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Mode = interp.TraceFull
	tr, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Status != trace.RunOK {
		t.Fatalf("run status %v", tr.Status)
	}
	return p, tr
}

func regionSpan(t *testing.T, p *ir.Program, tr *trace.Trace, name string, inst int) trace.Span {
	t.Helper()
	r, ok := p.RegionByName(name)
	if !ok {
		t.Fatalf("region %q missing", name)
	}
	s, ok := trace.NewSpanIndex(tr).Instance(int32(r.ID), inst)
	if !ok {
		t.Fatalf("region %q instance %d missing", name, inst)
	}
	return s
}

func TestBuildIdentifiesInputsAndOutputs(t *testing.T) {
	p, tr := buildRegionProg(t)
	span := regionSpan(t, p, tr, "sumreg", 0)
	g := Build(tr, span)

	if len(g.Nodes) == 0 || len(g.Edges) == 0 {
		t.Fatal("empty graph")
	}
	// The region's memory inputs must be exactly in[0..3].
	in, _ := p.GlobalByName("in")
	locs := g.InputMemLocs()
	if len(locs) != 4 {
		t.Fatalf("input mem locs = %d, want 4 (%v)", len(locs), locs)
	}
	for i, l := range locs {
		if l.Addr() != in.Addr+int64(i) {
			t.Errorf("input %d = %s", i, trace.Describe(l, p))
		}
	}
	// Written memory must be exactly out[0].
	out, _ := p.GlobalByName("out")
	w := g.WrittenMemLocs()
	if len(w) != 1 || w[0].Addr() != out.Addr {
		t.Fatalf("written locs = %v", w)
	}
	// out[0] must be recognized as a region output (read after the span).
	outs := g.OutputLocs(tr)
	if len(outs) != 1 || outs[0].Addr() != out.Addr {
		t.Fatalf("outputs = %v, want out[0]", outs)
	}
	// Final value of out[0] is 1+2+3+4 = 10.
	v, ok := g.FinalValue(trace.MemLoc(out.Addr))
	if !ok || v.Float() != 10 {
		t.Errorf("final out[0] = %v %v", v.Float(), ok)
	}
	// Roots include the 4 input cells.
	var extMem int
	for _, n := range g.Inputs() {
		if n.Loc.IsMem() {
			extMem++
		}
	}
	if extMem != 4 {
		t.Errorf("external memory roots = %d, want 4", extMem)
	}
	if len(g.Leaves()) == 0 {
		t.Error("graph has no leaves")
	}
}

func TestOpSignatureAndDiverged(t *testing.T) {
	p, tr := buildRegionProg(t)
	span := regionSpan(t, p, tr, "sumreg", 0)
	sig := OpSignature(tr, span)
	if len(sig) != span.Len() {
		t.Fatalf("signature length %d != span length %d", len(sig), span.Len())
	}
	if d := Diverged(tr, span, tr, span); d != -1 {
		t.Errorf("identical spans diverged at %d", d)
	}
	// A shifted span must diverge quickly.
	shift := trace.Span{RegionID: span.RegionID, Start: span.Start + 1, End: span.End}
	if d := Diverged(tr, span, tr, shift); d < 0 {
		t.Error("shifted spans should diverge")
	}
}

func TestDOTOutput(t *testing.T) {
	p, tr := buildRegionProg(t)
	span := regionSpan(t, p, tr, "sumreg", 0)
	g := Build(tr, span)
	dot := g.DOT(p, "sumreg")
	for _, want := range []string{"digraph", "in[0]", "out[0]", "fadd", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestErrMag(t *testing.T) {
	cases := []struct {
		c, f float64
		want float64
	}{
		{10, 11, 0.1},
		{10, 10, 0},
		{-4, -2, 0.5},
	}
	for _, c := range cases {
		if got := ErrMag(ir.F64Word(c.c), ir.F64Word(c.f), ir.F64); got != c.want {
			t.Errorf("ErrMag(%v,%v) = %v, want %v", c.c, c.f, got, c.want)
		}
	}
	// Corrupted zero: infinite magnitude (Table II row 1).
	if got := ErrMag(ir.F64Word(0), ir.F64Word(5.9e-8), ir.F64); got == 0 || got < 1e10 {
		t.Errorf("ErrMag(0, eps) = %v, want +Inf", got)
	}
	// Integer comparison path.
	if got := ErrMag(ir.I64Word(100), ir.I64Word(150), ir.I64); got != 0.5 {
		t.Errorf("int ErrMag = %v, want 0.5", got)
	}
	// -0.0 vs +0.0 differ in bits but are numerically equal.
	if got := ErrMag(ir.F64Word(0), ir.F64Word(-0.0), ir.F64); got != 0 {
		t.Errorf("signed zero ErrMag = %v, want 0", got)
	}
}

func TestCompareRegionCase1MaskedInput(t *testing.T) {
	// The region computes out[0] = (in[0] >> 4) using integer shift, so a
	// low-bit corruption of in[0] is masked: Case 1 must hold.
	p := ir.NewProgram("mask")
	in := p.AllocGlobal("in", 1, ir.I64)
	out := p.AllocGlobal("out", 1, ir.I64)
	sink := p.AllocGlobal("sink", 1, ir.I64)
	b := p.NewFunc("main", 0)
	b.StoreGI(in, 0, b.ConstI(0x130))
	b.Region("shiftreg", func() {
		b.StoreGI(out, 0, b.LShr(b.LoadGI(in, 0), b.ConstI(4)))
	})
	b.StoreGI(sink, 0, b.LoadGI(out, 0))
	b.RetVoid()
	b.Done()
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}

	run := func(f *interp.Fault) *trace.Trace {
		m, _ := interp.NewMachine(p)
		m.Mode = interp.TraceFull
		m.Fault = f
		tr, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	clean := run(nil)
	// Flip bit 1 of in[0] just as the region starts (at its RegionEnter
	// step), before the region's load executes.
	r, _ := p.RegionByName("shiftreg")
	cleanIx := trace.NewSpanIndex(clean)
	cs0, _ := cleanIx.Instance(int32(r.ID), 0)
	enterStep := clean.Recs.At(cs0.Start).Step
	faulty := run(&interp.Fault{Step: enterStep, Bit: 1, Kind: interp.FaultMem, Addr: in.Addr})

	cs, _ := cleanIx.Instance(int32(r.ID), 0)
	fs, _ := trace.NewSpanIndex(faulty).Instance(int32(r.ID), 0)
	cmp := CompareRegion(clean, cs, faulty, fs)
	if len(cmp.CorruptedInputs) != 1 {
		t.Fatalf("corrupted inputs = %d, want 1", len(cmp.CorruptedInputs))
	}
	if len(cmp.CorruptedOutputs) != 0 {
		t.Fatalf("corrupted outputs = %v, want none", cmp.CorruptedOutputs)
	}
	if !cmp.Case1 || cmp.Case2 || !cmp.Tolerant() {
		t.Errorf("Case1 = %v Case2 = %v, want Case1 only", cmp.Case1, cmp.Case2)
	}
	if cmp.DivergedAt != -1 {
		t.Errorf("control flow diverged at %d, want -1", cmp.DivergedAt)
	}
}

func TestCompareRegionCase2ErrorDiminished(t *testing.T) {
	// out[0] = in[0] * 0.001 + 999: a relative error on in[0] shrinks
	// dramatically relative to the output value. Case 2 must hold.
	p := ir.NewProgram("dimin")
	in := p.AllocGlobal("in", 1, ir.F64)
	out := p.AllocGlobal("out", 1, ir.F64)
	sink := p.AllocGlobal("sink", 1, ir.F64)
	b := p.NewFunc("main", 0)
	b.StoreGI(in, 0, b.ConstF(8))
	b.Region("dampreg", func() {
		v := b.FMul(b.LoadGI(in, 0), b.ConstF(0.001))
		b.StoreGI(out, 0, b.FAdd(v, b.ConstF(999)))
	})
	b.StoreGI(sink, 0, b.LoadGI(out, 0))
	b.RetVoid()
	b.Done()
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	run := func(f *interp.Fault) *trace.Trace {
		m, _ := interp.NewMachine(p)
		m.Mode = interp.TraceFull
		m.Fault = f
		tr, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	clean := run(nil)
	// Flip mantissa bit 50 of in[0]=8.0 at region entry: sizeable input
	// error, tiny output error.
	r, _ := p.RegionByName("dampreg")
	cleanIx := trace.NewSpanIndex(clean)
	cs0, _ := cleanIx.Instance(int32(r.ID), 0)
	faulty := run(&interp.Fault{Step: clean.Recs.At(cs0.Start).Step, Bit: 50, Kind: interp.FaultMem, Addr: in.Addr})
	cs, _ := cleanIx.Instance(int32(r.ID), 0)
	fs, _ := trace.NewSpanIndex(faulty).Instance(int32(r.ID), 0)
	cmp := CompareRegion(clean, cs, faulty, fs)
	if len(cmp.CorruptedInputs) != 1 || len(cmp.CorruptedOutputs) != 1 {
		t.Fatalf("deltas: in=%d out=%d, want 1 and 1", len(cmp.CorruptedInputs), len(cmp.CorruptedOutputs))
	}
	if !cmp.Case2 || cmp.Case1 {
		t.Errorf("Case1=%v Case2=%v MaxIn=%g MaxOut=%g", cmp.Case1, cmp.Case2, cmp.MaxInputErr, cmp.MaxOutputErr)
	}
	if cmp.MaxOutputErr >= cmp.MaxInputErr {
		t.Errorf("output err %g not smaller than input err %g", cmp.MaxOutputErr, cmp.MaxInputErr)
	}
}

// TestCompareRegionWithReusesCleanGraph pins CompareRegionWith to
// CompareRegion: a prebuilt (cached) clean graph must yield the identical
// comparison, since the per-fault pipeline now builds each clean graph once.
func TestCompareRegionWithReusesCleanGraph(t *testing.T) {
	p, clean := buildRegionProg(t)
	cs := regionSpan(t, p, clean, "sumreg", 0)

	m, _ := interp.NewMachine(p)
	m.Mode = interp.TraceFull
	m.Fault = &interp.Fault{Step: clean.Recs.At(cs.Start).Step + 1, Bit: 40, Kind: interp.FaultDst}
	faulty, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := trace.NewSpanIndex(faulty).Instance(cs.RegionID, 0)
	if !ok {
		t.Fatal("faulty run lost the region instance")
	}

	want := CompareRegion(clean, cs, faulty, fs)
	gClean := Build(clean, cs)
	if gClean.Source() != clean || gClean.Span() != cs {
		t.Fatal("graph does not remember its source trace/span")
	}
	got := CompareRegionWith(gClean, faulty, fs)
	if got.DivergedAt != want.DivergedAt || got.Case1 != want.Case1 || got.Case2 != want.Case2 ||
		got.MaxInputErr != want.MaxInputErr || got.MaxOutputErr != want.MaxOutputErr ||
		len(got.CorruptedInputs) != len(want.CorruptedInputs) ||
		len(got.CorruptedOutputs) != len(want.CorruptedOutputs) {
		t.Errorf("CompareRegionWith = %+v, want %+v", got, want)
	}
	// Reusing the same prebuilt graph for a second comparison is safe.
	again := CompareRegionWith(gClean, faulty, fs)
	if len(again.CorruptedInputs) != len(got.CorruptedInputs) || len(again.CorruptedOutputs) != len(got.CorruptedOutputs) {
		t.Error("second comparison against the cached graph differs")
	}
}
