package fliptracker_test

import (
	"context"
	"strings"
	"testing"

	"fliptracker"
	"fliptracker/internal/trace"
)

func TestPublicAPISurface(t *testing.T) {
	names := fliptracker.Apps()
	if len(names) < 10 {
		t.Fatalf("apps = %v", names)
	}
	for _, want := range []string{"cg", "mg", "is", "lu", "bt", "sp", "dc", "ft", "kmeans", "lulesh"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing workload %q", want)
		}
	}
	if _, ok := fliptracker.GetApp("cg"); !ok {
		t.Fatal("GetApp(cg) failed")
	}
}

func TestEndToEndPublicPipeline(t *testing.T) {
	an, err := fliptracker.NewAnalyzer("is")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := an.CleanTrace()
	if err != nil {
		t.Fatal(err)
	}
	if clean.Steps == 0 {
		t.Fatal("empty clean trace")
	}

	// Analyze one fault through the facade.
	fa, err := an.AnalyzeFault(fliptracker.Fault{
		Step: clean.Steps / 4,
		Bit:  3,
		Kind: fliptracker.FaultDst,
	})
	if err != nil {
		t.Fatal(err)
	}
	switch fa.Outcome {
	case fliptracker.Success, fliptracker.Failed, fliptracker.Crashed, fliptracker.NotApplied:
	default:
		t.Fatalf("unexpected outcome %v", fa.Outcome)
	}

	// DDDG of the shift region, exported as DOT.
	g, err := an.RegionDDDG("is_b", 0)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT(an.Prog, "is_b")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "lshr") {
		t.Error("DOT export missing expected content")
	}

	// Pattern rates + prediction plumbing.
	rates, err := an.PatternRates()
	if err != nil {
		t.Fatal(err)
	}
	if rates.Shift <= 0 {
		t.Errorf("IS shift rate = %v, want > 0", rates.Shift)
	}

	// Sample-size helper matches the paper's settings.
	if n := fliptracker.SampleSize(1<<40, 0.95, 0.03); n < 1000 || n > 1100 {
		t.Errorf("95/3 sample size = %d", n)
	}
}

func TestPublicCampaign(t *testing.T) {
	an, err := fliptracker.NewAnalyzer("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Campaign(context.Background(), fliptracker.WholeProgram(),
		fliptracker.WithTests(50), fliptracker.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tests != 50 {
		t.Fatalf("tests = %d", res.Tests)
	}
	if sr := res.SuccessRate(); sr < 0 || sr > 1 {
		t.Fatalf("rate = %v", sr)
	}
	// The streaming surface through the facade: deterministic per-fault
	// outcomes that aggregate to the same Result.
	c, err := an.NewCampaign(fliptracker.WholeProgram(),
		fliptracker.WithTests(50), fliptracker.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var tally fliptracker.CampaignResult
	for fo, err := range c.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		tally.Count(fo.Outcome)
	}
	if tally != res {
		t.Fatalf("streamed tally %+v != campaign result %+v", tally, res)
	}
}

func TestPublicAnalysisHelpers(t *testing.T) {
	an, err := fliptracker.NewAnalyzer("mg")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := an.CleanTrace()
	if err != nil {
		t.Fatal(err)
	}
	// Faulty run through the app helper, ACL through the facade.
	faulty, err := an.App.FaultyTrace(fliptracker.TraceFull, fliptracker.Fault{
		Step: clean.Steps / 2, Bit: 44, Kind: fliptracker.FaultDst,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := fliptracker.AnalyzeACL(faulty, clean)
	if res == nil {
		t.Fatal("nil ACL result")
	}
	// DDDG + pattern detection over one region instance via the facade.
	r, ok := an.Prog.RegionByName("mg_d")
	if !ok {
		t.Fatal("mg_d missing")
	}
	span, ok := trace.NewSpanIndex(faulty).Instance(int32(r.ID), 0)
	if !ok {
		t.Fatal("mg_d instance missing")
	}
	g := fliptracker.BuildDDDG(faulty, span)
	if len(g.Nodes) == 0 {
		t.Fatal("empty DDDG via facade")
	}
	d := fliptracker.DetectPatterns(an.Prog, faulty, clean, span, res)
	if d == nil {
		t.Fatal("nil detection")
	}
	rates := fliptracker.CountPatternRates(clean)
	if rates.Condition <= 0 {
		t.Errorf("rates = %+v", rates)
	}
	// Campaign through the facade's NewCampaign with a custom picker.
	c, err := fliptracker.NewCampaign(an.App.NewMachine, an.App.Verify,
		fliptracker.UniformDstPicker(clean.Steps),
		fliptracker.WithTests(30), fliptracker.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cr.Tests != 30 {
		t.Fatalf("campaign tests = %d", cr.Tests)
	}
}

func TestPublicPrediction(t *testing.T) {
	// Tiny synthetic regression through the facade.
	var samples []fliptracker.PredictSample
	for i := 0; i < 8; i++ {
		x := []float64{float64(i) / 8, 0.5, 0.1, 0.2, 0.0, 0.9}
		samples = append(samples, fliptracker.PredictSample{
			Name: string(rune('a' + i)),
			X:    x,
			Y:    0.2 + 0.5*x[0],
		})
	}
	m, err := fliptracker.FitPredictor(samples)
	if err != nil {
		t.Fatal(err)
	}
	// DefaultLambda shrinks coefficients, so an exact fit is not expected.
	if r2 := m.RSquared(samples); r2 < 0.9 {
		t.Errorf("R2 = %v", r2)
	}
	loo, err := fliptracker.LeaveOneOut(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(loo) != 8 {
		t.Fatalf("loo = %d", len(loo))
	}
}
