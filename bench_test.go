// Root benchmark harness: one bench per table and figure of the paper
// (regenerating the artifact in quick mode and reporting its headline
// number as a metric), micro-benchmarks of the substrate, and the ablation
// benches called out in DESIGN.md §5.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Paper-scale statistical sizing is available through cmd/ftbench -full.
package fliptracker_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"fliptracker"
	"math/rand"

	"fliptracker/internal/acl"
	"fliptracker/internal/apps"
	"fliptracker/internal/dddg"
	"fliptracker/internal/experiments"
	"fliptracker/internal/inject"
	"fliptracker/internal/interp"
	"fliptracker/internal/ir"
	"fliptracker/internal/mpi"
	"fliptracker/internal/trace"
)

func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Ranks = 4
	o.Runs = 3
	return o
}

// --- One bench per paper artifact ---

func BenchmarkFig4TracingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TracingOverhead(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MeanOverhead, "overhead-%")
	}
}

func BenchmarkFig5PerRegionSuccessRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.PerRegionSuccessRates(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Rows)), "regions")
	}
}

func BenchmarkFig6PerIterationSuccessRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.PerIterationSuccessRates(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Rows)), "iterations")
	}
}

func BenchmarkFig7ACLSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ACLSeries(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Peak), "peak-ACL")
	}
}

func BenchmarkTable1PatternInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.PatternInventory(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		found := 0
		for _, row := range r.Rows {
			if row.AnyFound {
				found++
			}
		}
		b.ReportMetric(float64(found), "regions-with-patterns")
	}
}

func BenchmarkTable2RepeatedAdditions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RepeatedAdditionsMagnitude(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if !r.Shrinks {
			b.Fatal("error magnitude did not shrink")
		}
	}
}

func BenchmarkTable3ResilienceAwareCG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ResilienceAwareCG(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		base, all := r.Rows[0].SR, r.Rows[3].SR
		if base > 0 {
			b.ReportMetric(100*(all-base)/base, "resilience-gain-%")
		}
	}
}

func BenchmarkTable4Prediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Prediction(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.RSquared, "r-squared-%")
		b.ReportMetric(100*r.MeanErrExclDC, "loo-err-%")
	}
}

// --- Substrate micro-benchmarks ---

func cleanCG(b *testing.B) (*fliptracker.Analyzer, *trace.Trace) {
	b.Helper()
	an, err := fliptracker.NewAnalyzer("cg")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := an.CleanTrace()
	if err != nil {
		b.Fatal(err)
	}
	return an, tr
}

func BenchmarkInterpreterUntraced(b *testing.B) {
	an, tr := cleanCG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := an.App.NewMachine()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Steps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msteps/s")
}

func BenchmarkInterpreterFullTrace(b *testing.B) {
	an, tr := cleanCG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := an.App.NewMachine()
		if err != nil {
			b.Fatal(err)
		}
		m.Mode = interp.TraceFull
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Steps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msteps/s")
}

func BenchmarkDDDGBuild(b *testing.B) {
	an, tr := cleanCG(b)
	span, err := an.RegionInstance("cg_b", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := dddg.Build(tr, span)
		if len(g.Nodes) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// midDstStep returns the dynamic step of a destination-writing instruction
// near the middle of the trace (faults on branch steps never fire).
func midDstStep(b *testing.B, tr *trace.Trace) uint64 {
	b.Helper()
	for i := tr.Recs.Len() / 2; i < tr.Recs.Len(); i++ {
		if tr.Recs.HasDst(i) {
			return tr.Recs.At(i).Step
		}
	}
	b.Fatal("no destination-writing record in second half of trace")
	return 0
}

func BenchmarkACLAnalysis(b *testing.B) {
	an, clean := cleanCG(b)
	faulty, err := an.App.FaultyTrace(interp.TraceFull,
		interp.Fault{Step: midDstStep(b, clean), Bit: 40, Kind: interp.FaultDst})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := acl.Analyze(faulty, clean)
		_ = res.Peak
	}
}

func BenchmarkFaultInjectionRun(b *testing.B) {
	an, clean := cleanCG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := an.App.NewMachine()
		if err != nil {
			b.Fatal(err)
		}
		m.Fault = &interp.Fault{Step: clean.Steps / 2, Bit: uint8(i % 64), Kind: interp.FaultDst}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointedCampaign runs the same campaign under the direct
// (replay-from-step-0) scheduler and the checkpointed scheduler. Both halves
// report the whole-campaign wall clock per injection; results are verified
// identical. "uniform" draws faults across the whole run (win bounded by the
// mean prefix length, ~2x); "late-window" clusters faults in the last tenth
// of the run, the shape of region-instance campaigns, where nearly the whole
// prefix is shared.
func BenchmarkCheckpointedCampaign(b *testing.B) {
	an, clean := cleanCG(b)
	const tests = 48
	run := func(b *testing.B, targets inject.TargetPicker, sched fliptracker.SchedulerKind) fliptracker.CampaignResult {
		b.Helper()
		c, err := fliptracker.NewCampaign(an.App.NewMachine, an.App.Verify, targets,
			fliptracker.WithTests(tests),
			fliptracker.WithSeed(20181111),
			fliptracker.WithScheduler(sched))
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for _, pop := range []struct {
		name    string
		targets inject.TargetPicker
	}{
		{"uniform", inject.UniformDst{TotalSteps: clean.Steps}},
		{"late-window", inject.StepRangeDst{Lo: clean.Steps - clean.Steps/10, Hi: clean.Steps}},
	} {
		var direct, checkpointed fliptracker.CampaignResult
		b.Run(pop.name+"/direct", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				direct = run(b, pop.targets, fliptracker.ScheduleDirect)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tests), "ns/injection")
		})
		b.Run(pop.name+"/checkpointed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				checkpointed = run(b, pop.targets, fliptracker.ScheduleCheckpointed)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tests), "ns/injection")
		})
		// Zero Tests means a -bench filter skipped that half's closure.
		if direct.Tests != 0 && checkpointed.Tests != 0 && direct != checkpointed {
			b.Fatalf("%s: schedulers disagree: %+v vs %+v", pop.name, direct, checkpointed)
		}
	}
}

// BenchmarkEarlyStopCampaign compares a fixed-size campaign (Leveugle et
// al.'s worst-case sizing at 95%/3%, the paper's §V rule) against the same
// campaign with sequential early stopping (WithEarlyStop(0.95, 0.03)) on CG
// and LULESH. Both halves report wall clock per run plus the injections
// actually executed; the early-stop half also reports how far its success
// rate moved from the fixed-size estimate (must stay within the margin).
// The win scales with how far the true rate is from the worst-case p = 0.5
// the fixed sizing assumes: each app pairs its whole-program population
// (near 0.5, little to gain) with a higher-resilience one that stops far
// earlier (CG's matvec input locations at ~0.89, LULESH's hybrid
// population at ~0.70).
func BenchmarkEarlyStopCampaign(b *testing.B) {
	const margin = 0.03
	for _, tc := range []struct {
		app, name string
		pop       fliptracker.Population
	}{
		{"cg", "whole-program", fliptracker.WholeProgram()},
		{"cg", "region-inputs", fliptracker.RegionInputs("cg_b", 0)},
		{"lulesh", "whole-program", fliptracker.WholeProgram()},
		{"lulesh", "hybrid", fliptracker.Hybrid()},
	} {
		an, err := fliptracker.NewAnalyzer(tc.app)
		if err != nil {
			b.Fatal(err)
		}
		size, err := an.PopulationSize(tc.pop)
		if err != nil {
			b.Fatal(err)
		}
		tests := fliptracker.SampleSize(size, 0.95, margin)
		run := func(b *testing.B, opts ...fliptracker.CampaignOption) fliptracker.CampaignResult {
			b.Helper()
			res, err := an.Campaign(context.Background(), tc.pop,
				append([]fliptracker.CampaignOption{
					fliptracker.WithTests(tests),
					fliptracker.WithSeed(20181111),
				}, opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		var fixed, early fliptracker.CampaignResult
		b.Run(tc.app+"/"+tc.name+"/fixed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fixed = run(b)
			}
			b.ReportMetric(float64(fixed.Tests), "injections")
		})
		b.Run(tc.app+"/"+tc.name+"/earlystop", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				early = run(b, fliptracker.WithEarlyStop(0.95, margin))
			}
			b.ReportMetric(float64(early.Tests), "injections")
			if fixed.Tests != 0 {
				b.ReportMetric(100*early.SuccessRate()-100*fixed.SuccessRate(), "rate-delta-pp")
			}
		})
		if fixed.Tests != 0 && early.Tests != 0 {
			// Both rates are independent estimates, each within ~margin of
			// the true rate at the configured confidence, so their
			// difference is only bounded by 2*margin — not margin itself.
			if d := early.SuccessRate() - fixed.SuccessRate(); d > 2*margin || d < -2*margin {
				b.Fatalf("%s/%s: early-stop rate %.3f vs fixed %.3f exceeds 2x margin %.2f",
					tc.app, tc.name, early.SuccessRate(), fixed.SuccessRate(), 2*margin)
			}
		}
	}
}

// legacyAnalyzeFault replicates the pre-CleanIndex per-fault analysis for
// the benchmark baseline: every clean-run artifact — the faulty trace's
// record buffer (unhinted), the clean region spans, and each touched
// instance's clean DDDG — is re-derived on every call, exactly as
// core.AnalyzeFault did before the analysis-pipeline v2 refactor.
func legacyAnalyzeFault(b *testing.B, an *fliptracker.Analyzer, clean *trace.Trace, f interp.Fault) {
	b.Helper()
	faulty, err := an.App.FaultyTrace(interp.TraceFull, f)
	if err != nil {
		b.Fatal(err)
	}
	res := acl.Analyze(faulty, clean)
	if res.InjectionIndex < 0 {
		return
	}
	cleanSpans := clean.SplitRegions()
	faultySpans := faulty.SplitRegions()
	type key struct {
		id   int32
		inst int
	}
	fIdx := make(map[key]trace.Span, len(faultySpans))
	for _, s := range faultySpans {
		fIdx[key{s.RegionID, s.Instance}] = s
	}
	for _, cs := range cleanSpans {
		fs, ok := fIdx[key{cs.RegionID, cs.Instance}]
		if !ok || !res.TouchesSpan(fs) {
			continue
		}
		dddg.CompareRegion(clean, cs, faulty, fs)
		fliptracker.DetectPatterns(an.Prog, faulty, clean, fs, res)
	}
}

// BenchmarkAnalyzedCampaign measures the analysis pipeline v2 speedup on a
// fixed spread of MG faults run through the full per-fault analysis:
//
//   - legacy-loop: the pre-refactor path — clean spans re-split and clean
//     DDDGs rebuilt per fault, unhinted record buffers.
//   - index-loop: a serial AnalyzeFault loop sharing the CleanIndex.
//   - campaign/*: analyzed campaigns over the same faults (FaultList), which
//     add checkpointed prefix sharing and worker-pool parallelism.
//
// Run with -benchmem to see the allocation drop from TraceHint/PrimeTrace
// preallocation and the cached clean artifacts. Every variant reports
// ms/fault; campaign results are pinned equal to the loop by
// TestAnalyzedCampaignMatchesAnalyzeFaultLoop.
func BenchmarkAnalyzedCampaign(b *testing.B) {
	an, err := fliptracker.NewAnalyzer("mg")
	if err != nil {
		b.Fatal(err)
	}
	clean, err := an.CleanTrace()
	if err != nil {
		b.Fatal(err)
	}
	ix, err := an.Index()
	if err != nil {
		b.Fatal(err)
	}
	// A fixed fault spread over the back half of the run (the shape of
	// region campaigns, where checkpointing shares the long prefix), on
	// absorbable mantissa bits so analyses see real pattern activity.
	const tests = 24
	var faults []interp.Fault
	for i := 0; i < tests; i++ {
		step := clean.Steps/2 + uint64(i)*(clean.Steps/2)/tests
		faults = append(faults, interp.Fault{Step: step, Bit: uint8(30 + i%23), Kind: interp.FaultDst})
	}
	perFault := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N*tests), "ms/fault")
	}

	b.Run("legacy-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range faults {
				legacyAnalyzeFault(b, an, clean, f)
			}
		}
		perFault(b)
	})
	b.Run("index-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range faults {
				if _, err := an.AnalyzeFault(f); err != nil {
					b.Fatal(err)
				}
			}
		}
		perFault(b)
	})
	campaign := func(b *testing.B, sched fliptracker.SchedulerKind, par int) {
		for i := 0; i < b.N; i++ {
			c, err := fliptracker.NewCampaign(an.App.NewMachine, an.App.Verify,
				fliptracker.FaultList{Faults: faults},
				fliptracker.WithTests(tests),
				fliptracker.WithScheduler(sched),
				fliptracker.WithParallelism(par),
				ix.AnalysisOption())
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for fo, err := range c.Stream(context.Background()) {
				if err != nil {
					b.Fatal(err)
				}
				if fa, ok := fo.Analysis.(*fliptracker.FaultAnalysis); !ok || fa == nil {
					b.Fatal("missing analysis payload")
				}
				n++
			}
			if n != tests {
				b.Fatalf("analyzed %d faults, want %d", n, tests)
			}
		}
		perFault(b)
	}
	b.Run("campaign/direct-p1", func(b *testing.B) {
		campaign(b, fliptracker.ScheduleDirect, 1)
	})
	b.Run("campaign/checkpointed-p1", func(b *testing.B) {
		campaign(b, fliptracker.ScheduleCheckpointed, 1)
	})
	b.Run("campaign/checkpointed-p4", func(b *testing.B) {
		campaign(b, fliptracker.ScheduleCheckpointed, 4)
	})
}

// BenchmarkMPICampaign measures the MPI campaign engine against the
// sequential mpi.Run + per-rank-analysis loop it replaces, on a fixed fault
// spread (FaultList) so every variant does identical work:
//
//   - sequential-loop: one MPIAnalyzer.AnalyzeWorld per fault — a full
//     replayed world plus per-rank analysis, no campaign machinery.
//   - campaign/p*: the analyzed MPI campaign over the same faults at
//     increasing world-level parallelism.
//
// Worlds are the unit of work, so wall clock should scale down with
// parallelism until rank goroutines saturate the cores. Results are pinned
// byte-identical across all variants by TestMPICampaignMatchesSequentialLoop.
func BenchmarkMPICampaign(b *testing.B) {
	const (
		ranks = 3
		tests = 8
	)
	ma, err := fliptracker.NewMPIAnalyzer("is", ranks)
	if err != nil {
		b.Fatal(err)
	}
	ma.FaultRank = 1
	steps := ma.InjectedSteps()
	var faults []interp.Fault
	for i := 0; i < tests; i++ {
		step := steps/2 + uint64(i)*(steps/2)/tests
		faults = append(faults, interp.Fault{Step: step, Bit: uint8(30 + i%23), Kind: interp.FaultDst})
	}
	perWorld := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N*tests), "ms/world")
	}

	b.Run("sequential-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range faults {
				if _, err := ma.AnalyzeWorld(f); err != nil {
					b.Fatal(err)
				}
			}
		}
		perWorld(b)
	})
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("campaign/p%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				for wa, err := range ma.StreamWorldAnalysis(context.Background(),
					fliptracker.FaultList{Faults: faults},
					fliptracker.MPIWithTests(tests),
					fliptracker.MPIWithParallelism(par)) {
					if err != nil {
						b.Fatal(err)
					}
					if wa == nil {
						b.Fatal("nil analysis")
					}
					n++
				}
				if n != tests {
					b.Fatalf("analyzed %d worlds, want %d", n, tests)
				}
			}
			perWorld(b)
		})
	}
}

// BenchmarkCheckpointedMPICampaign measures the checkpointed MPI scheduler's
// headline win on late-window faults — the shape of region campaigns, where
// every fault lands in the back quarter of the injected rank's run and the
// shared fault-free world prefix dominates direct replay cost:
//
//   - direct: every injected world replays all ranks from step 0.
//   - checkpointed: one forward pass lays world snapshots at collective
//     boundaries; each world restores the nearest snapshot at or before its
//     fault and resumes the suffix.
//
// Both variants run plain (untraced) campaigns over the same FaultList at
// parallelism 1, so ms/world isolates scheduling from analysis and worker
// parallelism. Results are pinned identical across schedulers by
// TestCheckpointedMPICampaignMatchesDirect.
func BenchmarkCheckpointedMPICampaign(b *testing.B) {
	const (
		ranks = 3
		tests = 16
	)
	ma, err := fliptracker.NewMPIAnalyzer("is", ranks)
	if err != nil {
		b.Fatal(err)
	}
	ma.FaultRank = 1
	steps := ma.InjectedSteps()
	var faults []interp.Fault
	for i := 0; i < tests; i++ {
		step := steps - steps/4 + uint64(i)*(steps/4)/tests
		faults = append(faults, interp.Fault{Step: step, Bit: uint8(30 + i%23), Kind: interp.FaultDst})
	}
	perWorld := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N*tests), "ms/world")
	}
	for _, sched := range []struct {
		name string
		kind fliptracker.SchedulerKind
	}{
		{"direct", fliptracker.ScheduleDirect},
		{"checkpointed", fliptracker.ScheduleCheckpointed},
	} {
		b.Run(sched.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := ma.NewCampaign(
					fliptracker.FaultList{Faults: faults},
					fliptracker.MPIWithTests(tests),
					fliptracker.MPIWithScheduler(sched.kind),
					fliptracker.MPIWithParallelism(1))
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if res.Tests != tests {
					b.Fatalf("ran %d worlds, want %d", res.Tests, tests)
				}
			}
			perWorld(b)
		})
	}
}

// BenchmarkSnapshotRestore pins the copy-on-write snapshot primitives
// themselves, outside any campaign: Snapshot() on a machine whose memory is
// fully materialized (the page-table copy the checkpointed schedulers pay
// per checkpoint), restore+run at varying memory sizes and dirty fractions
// (the per-injection cost of re-dirtying shared pages), and the MPI world
// variants (forward-pass SnapshotWorld, RestoreWorld resume). Memory size
// scales the page table; the dirty fraction scales how many pages a resumed
// run copies, which is what CoW makes proportional to writes instead of to
// memory size.
func BenchmarkSnapshotRestore(b *testing.B) {
	build := func(memWords, dirtyWords int64) *ir.Program {
		p := ir.NewProgram(fmt.Sprintf("snapbench_%d_%d", memWords, dirtyWords))
		g := p.AllocGlobal("g", memWords, ir.F64)
		bb := p.NewFunc("main", 0)
		one := bb.ConstF(1.0)
		acc := bb.ConstF(0)
		bb.ForI(0, dirtyWords, func(i ir.Reg) {
			w := bb.FAdd(bb.LoadG(g, i), one)
			bb.StoreG(g, i, w)
			bb.BinTo(ir.OpFAdd, acc, acc, w)
		})
		bb.Emit(ir.F64, acc)
		bb.RetVoid()
		bb.Done()
		if err := p.Seal(); err != nil {
			b.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct {
		name                 string
		memWords, dirtyWords int64
	}{
		{"mem=32KB/dirty=6%", 1 << 12, 1 << 8},
		{"mem=512KB/dirty=0.4%", 1 << 16, 1 << 8},
		{"mem=512KB/dirty=100%", 1 << 16, 1 << 16},
	} {
		p := build(tc.memWords, tc.dirtyWords)
		paused := func() *interp.Machine {
			m, err := interp.NewMachine(p)
			if err != nil {
				b.Fatal(err)
			}
			// Materialize every page before pausing, so snapshots measure a
			// fully dirty memory — the state a mid-run checkpoint sees.
			fill := make([]ir.Word, tc.memWords)
			for i := range fill {
				fill[i] = ir.F64Word(float64(i%97) * 0.5)
			}
			m.WriteMem(0, fill)
			if ok, err := m.RunUntil(0); err != nil || !ok {
				b.Fatalf("pause: ok=%v err=%v", ok, err)
			}
			return m
		}
		m := paused()
		b.Run("snapshot/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})
		snap, err := m.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		b.Run("restore+run/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rm, err := interp.NewMachine(p)
				if err != nil {
					b.Fatal(err)
				}
				if err := rm.Restore(snap); err != nil {
					b.Fatal(err)
				}
				if _, err := rm.Resume(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// MPI world variants over a real app: SnapshotWorld pays one fault-free
	// forward pass plus a per-rank page-table copy at the chosen cut;
	// RestoreWorld rebuilds the world from that cut and runs it out.
	a, ok := apps.Get("is")
	if !ok {
		b.Fatal("is app missing")
	}
	p, err := a.MPIProgram()
	if err != nil {
		b.Fatal(err)
	}
	cfg := mpi.Config{
		Ranks:     3,
		Seed:      apps.DefaultSeed,
		FaultRank: 1,
		ExtraBind: func(m *interp.Machine, _ int) error { return apps.BindMathHosts(m) },
	}
	clean, err := mpi.Run(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rounds := len(clean.Cuts[0])
	for _, cl := range clean.Cuts {
		if len(cl) < rounds {
			rounds = len(cl)
		}
	}
	if rounds == 0 {
		b.Fatal("is has no collective rounds")
	}
	mid := []int{rounds / 2}
	b.Run("world-snapshot/is/ranks=3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mpi.SnapshotWorld(context.Background(), p, cfg, clean, mid); err != nil {
				b.Fatal(err)
			}
		}
	})
	snaps, err := mpi.SnapshotWorld(context.Background(), p, cfg, clean, mid)
	if err != nil {
		b.Fatal(err)
	}
	rcfg := cfg
	rcfg.Replay = clean.Recording
	b.Run("world-restore/is/ranks=3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mpi.RestoreWorld(p, rcfg, snaps[0], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStaticPrunedCampaign measures what the static IR dependence
// analysis buys a whole-program campaign: the unpruned baseline runs every
// injection, the pruned half classifies each drawn fault first and skips the
// statically provable ones (benign -> Success, never-fires -> NotApplied)
// without executing. Both halves report ms/fault; the pruned half also
// reports the measured prune rate. Results are pinned identical by
// TestStaticPruneSoundnessMatrix; the benchmark re-checks them anyway so a
// -bench run can never report a speedup bought with wrong results.
func BenchmarkStaticPrunedCampaign(b *testing.B) {
	const (
		tests = 64
		seed  = 20181111
	)
	for _, app := range []string{"cg", "kmeans", "lulesh"} {
		an, err := fliptracker.NewAnalyzer(app)
		if err != nil {
			b.Fatal(err)
		}
		pruner, err := an.StaticPruner()
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, opts ...fliptracker.CampaignOption) fliptracker.CampaignResult {
			b.Helper()
			res, err := an.Campaign(context.Background(), fliptracker.WholeProgram(),
				append([]fliptracker.CampaignOption{
					fliptracker.WithTests(tests),
					fliptracker.WithSeed(seed),
				}, opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		perFault := func(b *testing.B) {
			b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N*tests), "ms/fault")
		}
		var plain, pruned fliptracker.CampaignResult
		b.Run(app+"/unpruned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plain = run(b)
			}
			perFault(b)
		})
		b.Run(app+"/pruned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pruned = run(b, fliptracker.WithStaticPrune(pruner))
			}
			perFault(b)
			// The prune rate over the campaign's own fault stream: draw the
			// same faults the campaign pre-draws (whole-program population,
			// same seed) and classify them without running anything.
			clean, err := an.CleanTrace()
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			picker := inject.UniformDst{TotalSteps: clean.Steps}
			faults := make([]interp.Fault, tests)
			for i := range faults {
				faults[i] = picker.Pick(rng)
			}
			b.ReportMetric(100*pruner.StatsFor(faults).Rate(), "pruned-%")
		})
		// Zero Tests means a -bench filter skipped that half's closure.
		if plain.Tests != 0 && pruned.Tests != 0 && plain != pruned {
			b.Fatalf("%s: pruned and unpruned campaigns disagree: %+v vs %+v", app, pruned, plain)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationACLLiveness compares the paper's liveness-refined ACL
// against conservative alive-until-overwritten tainting: the refinement's
// cost and how much it shrinks reported peaks.
func BenchmarkAblationACLLiveness(b *testing.B) {
	an, clean := cleanCG(b)
	faulty, err := an.App.FaultyTrace(interp.TraceFull,
		interp.Fault{Step: midDstStep(b, clean), Bit: 40, Kind: interp.FaultDst})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("with-liveness", func(b *testing.B) {
		var peak int32
		for i := 0; i < b.N; i++ {
			peak = acl.AnalyzeWith(faulty, clean, acl.Options{}).Peak
		}
		b.ReportMetric(float64(peak), "peak-ACL")
	})
	b.Run("conservative", func(b *testing.B) {
		var peak int32
		for i := 0; i < b.N; i++ {
			peak = acl.AnalyzeWith(faulty, clean, acl.Options{SkipLiveness: true}).Peak
		}
		b.ReportMetric(float64(peak), "peak-ACL")
	})
}

// BenchmarkAblationRegionGranularity compares analysis cost at the paper's
// first-level-inner-loop granularity against whole-main-loop granularity
// (§III-A: granularity changes cost, not correctness).
func BenchmarkAblationRegionGranularity(b *testing.B) {
	an, tr := cleanCG(b)
	inner, err := an.RegionInstance("cg_b", 0)
	if err != nil {
		b.Fatal(err)
	}
	outer, err := an.RegionInstance("cg_main", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("inner-loop-region", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dddg.Build(tr, inner)
		}
		b.ReportMetric(float64(inner.Len()), "records")
	})
	b.Run("main-loop-region", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dddg.Build(tr, outer)
		}
		b.ReportMetric(float64(outer.Len()), "records")
	})
}

// BenchmarkAblationTraceSplitting compares per-region-instance analysis
// (trace splitting, §IV-A) against analyzing one whole-trace graph.
func BenchmarkAblationTraceSplitting(b *testing.B) {
	an, tr := cleanCG(b)
	region, err := an.Region("cg_b")
	if err != nil {
		b.Fatal(err)
	}
	spans := trace.NewSpanIndex(tr).Instances(int32(region.ID))
	whole := trace.Span{Start: 0, End: tr.Recs.Len()}
	b.Run("split-per-instance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range spans {
				dddg.Build(tr, s)
			}
		}
	})
	b.Run("whole-trace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dddg.Build(tr, whole)
		}
	})
}

// BenchmarkAblationTraceCodecs compares the gob+gzip trace encoding against
// the compact varint/delta binary codec (the §IV-A trace-compression
// direction) on a real CG trace.
func BenchmarkAblationTraceCodecs(b *testing.B) {
	_, tr := cleanCG(b)
	sub := &trace.Trace{ProgName: tr.ProgName, Recs: tr.Recs.Slice(0, 50000), Output: tr.Output, Status: tr.Status, Steps: tr.Steps}
	b.Run("gob-gzip", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := sub.Write(&buf); err != nil {
				b.Fatal(err)
			}
			n = buf.Len()
		}
		b.ReportMetric(float64(n)/float64(sub.Recs.Len()), "bytes/rec")
	})
	b.Run("binary", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := sub.WriteBinary(&buf); err != nil {
				b.Fatal(err)
			}
			n = buf.Len()
		}
		b.ReportMetric(float64(n)/float64(sub.Recs.Len()), "bytes/rec")
	})
	b.Run("binary-decode", func(b *testing.B) {
		var buf bytes.Buffer
		if err := sub.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		for i := 0; i < b.N; i++ {
			if _, err := trace.ReadBinary(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTraceCodec is the headline codec record for BENCH_10.json:
// encode and decode throughput (MB/s of the wire format) plus bytes/record
// for both the legacy row-interleaved FTRC1 and the columnar FTRC2, over a
// real CG clean trace.
func BenchmarkTraceCodec(b *testing.B) {
	_, tr := cleanCG(b)
	sub := &trace.Trace{ProgName: tr.ProgName, Recs: tr.Recs.Slice(0, 50000), Output: tr.Output, Status: tr.Status, Steps: tr.Steps}
	codecs := []struct {
		name   string
		encode func(*trace.Trace, *bytes.Buffer) error
	}{
		{"ftrc1", func(tr *trace.Trace, buf *bytes.Buffer) error { return tr.WriteBinaryV1(buf) }},
		{"ftrc2", func(tr *trace.Trace, buf *bytes.Buffer) error { return tr.WriteBinary(buf) }},
	}
	for _, c := range codecs {
		var wire bytes.Buffer
		if err := c.encode(sub, &wire); err != nil {
			b.Fatal(err)
		}
		raw := wire.Bytes()
		b.Run("encode/"+c.name, func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				buf.Grow(len(raw))
				if err := c.encode(sub, &buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(raw))/float64(sub.Recs.Len()), "bytes/rec")
		})
		b.Run("decode/"+c.name, func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := trace.ReadBinary(bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				trace.PutRecs(got.Recs)
			}
			b.ReportMetric(float64(len(raw))/float64(sub.Recs.Len()), "bytes/rec")
		})
	}
}

// BenchmarkAblationSelectiveTracing measures §V-B's selective tracing: full
// tracing vs tracing only conj_grad vs markers only.
func BenchmarkAblationSelectiveTracing(b *testing.B) {
	an, tr0 := cleanCG(b)
	cj := an.Prog.FuncByName["conj_grad"]
	run := func(b *testing.B, setup func(m *interp.Machine)) {
		for i := 0; i < b.N; i++ {
			m, err := an.App.NewMachine()
			if err != nil {
				b.Fatal(err)
			}
			m.Mode = interp.TraceFull
			m.TraceHint = tr0.Steps
			setup(m)
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("all-functions", func(b *testing.B) {
		run(b, func(m *interp.Machine) {})
	})
	b.Run("conj-grad-only", func(b *testing.B) {
		run(b, func(m *interp.Machine) { m.TraceFuncs = map[int]bool{cj.Index: true} })
	})
	b.Run("no-functions", func(b *testing.B) {
		run(b, func(m *interp.Machine) { m.TraceFuncs = map[int]bool{} })
	})
}

// BenchmarkAblationTracingModes compares the interpreter's three trace
// modes, the cost spectrum behind Figure 4.
func BenchmarkAblationTracingModes(b *testing.B) {
	an, _ := cleanCG(b)
	for _, mode := range []struct {
		name string
		m    interp.TraceMode
	}{{"off", interp.TraceOff}, {"markers", interp.TraceMarkers}, {"full", interp.TraceFull}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := an.App.NewMachine()
				if err != nil {
					b.Fatal(err)
				}
				m.Mode = mode.m
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
