package fliptracker_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"fliptracker"
	"fliptracker/internal/interp"
)

// digestFA renders the analysis artifacts the golden tests pin: the outcome,
// the ACL table's headline numbers, and every region report's comparison,
// pattern bitset and evidence count. Two FaultAnalysis values with equal
// digests are byte-identical in everything the paper's tables consume.
func digestFA(fa *fliptracker.FaultAnalysis) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "outcome=%s acl.peak=%d acl.inj=%d acl.div=%d acl.events=%d acl.intervals=%d regions=%d",
		fa.Outcome, fa.ACL.Peak, fa.ACL.InjectionIndex, fa.ACL.DivergenceIndex, len(fa.ACL.Events), len(fa.ACL.Intervals), len(fa.Regions))
	for _, rr := range fa.Regions {
		found := ""
		for p := 0; p < fliptracker.NumPatterns; p++ {
			if rr.Patterns.Found[p] {
				found += "1"
			} else {
				found += "0"
			}
		}
		fmt.Fprintf(&sb, " | %s#%d in=%d out=%d div=%d c1=%v c2=%v maxin=%.6g maxout=%.6g drop=%d pat=%s ev=%d",
			rr.Region.Name, rr.Instance, len(rr.Comparison.CorruptedInputs), len(rr.Comparison.CorruptedOutputs),
			rr.Comparison.DivergedAt, rr.Comparison.Case1, rr.Comparison.Case2,
			rr.Comparison.MaxInputErr, rr.Comparison.MaxOutputErr, rr.ACLDrop, found, len(rr.Patterns.Evidence))
	}
	return sb.String()
}

// fnv64 hashes a digest (FNV-1a) so the goldens stay one line each.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// TestAnalyzeFaultGolden pins AnalyzeFault to digests captured from the
// pre-CleanIndex implementation (which re-derived every clean-run artifact
// per fault): the v2 pipeline — shared spans, cached clean DDDGs,
// CompareRegionWith, the event-indexed pattern Detector, preallocated
// faulty traces — must reproduce the legacy analysis byte-identically.
//
// One intentional deviation from the captured legacy digests: cg/mid-dst-40
// targets a step whose instruction writes no destination, so the fault
// never fires. Legacy AnalyzeFault reported such runs as Success; v2
// classifies them NotApplied (matching campaign classification — the fix
// for analyzed and plain campaigns disagreeing on the same seed). Its
// pinned digest differs from the legacy capture only in that outcome field.
func TestAnalyzeFaultGolden(t *testing.T) {
	golden := []struct {
		app, name string
		want      uint64
	}{
		{"cg", "mid-dst-40", 0xc2ad8a860d69b4f4}, // legacy digest had outcome=success (see above)
		{"cg", "third-dst-30", 0xa371f8f770100262},
		{"cg", "late-dst-12", 0x7b6b073ad99eeef8},
		{"cg", "early-high-62", 0x89a702ffec7f6b6d},
		{"mg", "mid-dst-40", 0x33ccf16a56582c5f},
		{"mg", "third-dst-30", 0x7c1ae3a6f1331f62},
		{"mg", "late-dst-12", 0xf47f5be9b5b73dff},
		{"mg", "early-high-62", 0x1839f6e829136229},
	}
	faults := func(steps uint64) map[string]fliptracker.Fault {
		return map[string]fliptracker.Fault{
			"mid-dst-40":    {Step: steps / 2, Bit: 40, Kind: fliptracker.FaultDst},
			"third-dst-30":  {Step: steps / 3, Bit: 30, Kind: fliptracker.FaultDst},
			"late-dst-12":   {Step: steps - steps/10, Bit: 12, Kind: fliptracker.FaultDst},
			"early-high-62": {Step: steps / 10, Bit: 62, Kind: fliptracker.FaultDst},
		}
	}
	analyzers := map[string]*fliptracker.Analyzer{}
	for _, g := range golden {
		an, ok := analyzers[g.app]
		if !ok {
			var err error
			an, err = fliptracker.NewAnalyzer(g.app)
			if err != nil {
				t.Fatal(err)
			}
			analyzers[g.app] = an
		}
		clean, err := an.CleanTrace()
		if err != nil {
			t.Fatal(err)
		}
		fa, err := an.AnalyzeFault(faults(clean.Steps)[g.name])
		if err != nil {
			t.Fatalf("%s/%s: %v", g.app, g.name, err)
		}
		d := digestFA(fa)
		if got := fnv64(d); got != g.want {
			t.Errorf("%s/%s: digest hash %#x, want legacy golden %#x\ndigest: %s", g.app, g.name, got, g.want, d)
		}
	}
}

// TestAnalyzedCampaignMatchesAnalyzeFaultLoop pins the analyzed-campaign
// contract: for a fixed seed, AnalyzedCampaign yields exactly the analyses
// a loop of per-fault AnalyzeFault calls produces — same outcomes, same
// patterns found, same ACL peaks, byte-identical digests — under both
// schedulers and at parallelism 1 and 4, with the per-fault order matching
// the campaign's deterministic fault stream.
func TestAnalyzedCampaignMatchesAnalyzeFaultLoop(t *testing.T) {
	an, err := fliptracker.NewAnalyzer("mg")
	if err != nil {
		t.Fatal(err)
	}
	const tests = 12
	ctx := context.Background()
	pop := fliptracker.RegionInternal("mg_b", 0)
	copts := func(sched fliptracker.SchedulerKind, par int) []fliptracker.CampaignOption {
		return []fliptracker.CampaignOption{
			fliptracker.WithTests(tests),
			fliptracker.WithSeed(20181111),
			fliptracker.WithScheduler(sched),
			fliptracker.WithParallelism(par),
		}
	}

	// The reference: stream once to learn the drawn faults, analyze each
	// with the legacy per-fault entry point.
	var faults []interp.Fault
	c, err := an.NewAnalyzedCampaign(pop, copts(fliptracker.ScheduleDirect, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	var ref []string
	for fo, err := range c.Stream(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		faults = append(faults, fo.Fault)
		ref = append(ref, digestFA(fo.Analysis.(*fliptracker.FaultAnalysis)))
	}
	if len(ref) != tests {
		t.Fatalf("campaign yielded %d analyses, want %d", len(ref), tests)
	}
	for i, f := range faults {
		fa, err := an.AnalyzeFault(f)
		if err != nil {
			t.Fatal(err)
		}
		if d := digestFA(fa); d != ref[i] {
			t.Errorf("fault %d (%v): campaign and loop digests differ\ncampaign: %s\nloop:     %s", i, f, ref[i], d)
		}
	}

	// Every scheduler/parallelism combination reproduces the reference
	// sequence exactly.
	for _, sched := range []fliptracker.SchedulerKind{fliptracker.ScheduleDirect, fliptracker.ScheduleCheckpointed} {
		for _, par := range []int{1, 4} {
			fas, err := an.AnalyzedCampaign(ctx, pop, copts(sched, par)...)
			if err != nil {
				t.Fatal(err)
			}
			if len(fas) != tests {
				t.Fatalf("%v par=%d: %d analyses, want %d", sched, par, len(fas), tests)
			}
			for i, fa := range fas {
				if fa.Fault != faults[i] {
					t.Fatalf("%v par=%d: fault %d is %v, want %v (stream order broken)", sched, par, i, fa.Fault, faults[i])
				}
				if d := digestFA(fa); d != ref[i] {
					t.Errorf("%v par=%d: fault %d digest mismatch\ngot:  %s\nwant: %s", sched, par, i, d, ref[i])
				}
			}
		}
	}
}
