// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON record, so CI can publish headline benchmark numbers
// (name, ns/op and derived ms/op, B/op, allocs/op, custom metrics) as an
// artifact and the performance trajectory stays trackable across PRs.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem . | go run ./cmd/benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	MsPerOp     float64 `json:"ms_per_op,omitempty"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries every reported unit verbatim, including custom
	// b.ReportMetric units like Msteps/s or ms/world.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches "BenchmarkName-8   123   456 ns/op   ..." — the name
// (CPU-count suffix stripped), the iteration count, and the metric tail.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func parseLine(line string) (Record, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimRight(line, "\r\n"))
	if m == nil {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		unit := fields[i+1]
		rec.Metrics[unit] = v
		switch unit {
		case "ns/op":
			rec.NsPerOp = v
			rec.MsPerOp = v / 1e6
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		}
	}
	if len(rec.Metrics) == 0 {
		return Record{}, false
	}
	return rec, true
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var recs []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if rec, ok := parseLine(sc.Text()); ok {
			recs = append(recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
