// Command ftbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ftbench -exp fig5            # one experiment, quick mode
//	ftbench -exp all -full       # every experiment at paper-scale sizing
//	ftbench -exp fig4 -ranks 64  # Figure 4 at the paper's world size
//
// Quick mode caps injection campaigns at ~120 tests per target; -full sizes
// them with the paper's statistical rule (95%/3% for §V, 99%/1% for §VII),
// which is slower but statistically equivalent to the original setup. In
// full mode, campaigns stop sequentially as soon as their success-rate
// confidence interval meets the sizing margin (-earlystop=false restores
// the fixed worst-case sample size).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fliptracker/internal/experiments"
	"fliptracker/internal/inject"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig4 fig5 fig6 fig7 tab1 tab2 tab3 tab4) or all")
	full := flag.Bool("full", false, "paper-scale statistical sizing (slow)")
	ranks := flag.Int("ranks", 8, "MPI world size for fig4 (paper: 64)")
	runs := flag.Int("runs", 5, "timing repetitions for tab3 (paper: 20)")
	seed := flag.Int64("seed", 20181111, "campaign seed")
	direct := flag.Bool("direct", false, "replay every injection from step 0 instead of the checkpointed scheduler (same results, slower)")
	earlyStop := flag.Bool("earlystop", true, "with -full, stop each campaign sequentially once its confidence interval meets the sizing margin (fewer injections, rate within margin); set to false for the fixed worst-case sample size")
	fig7Data := flag.String("fig7data", "", "also write the Figure 7 ACL series as a gnuplot data file")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Quick = !*full
	opts.Ranks = *ranks
	opts.Runs = *runs
	opts.Seed = *seed
	opts.EarlyStop = *full && *earlyStop
	if *direct {
		opts.Scheduler = inject.ScheduleDirect
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, time.Since(start).Seconds(), out)
	}
	if *fig7Data != "" {
		r, err := experiments.ACLSeries(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftbench: fig7data:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*fig7Data, []byte(r.GnuplotData()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ftbench: fig7data:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Figure 7 gnuplot data to %s\n", *fig7Data)
	}
}
