// Command ftlint runs FlipTracker's determinism linter (internal/lint) over
// the engine packages whose outputs are pinned byte-identical across runs —
// campaign engines, the journal, the trace model, the orchestration layer —
// and exits nonzero on findings.
//
// Usage:
//
//	ftlint [package-dir ...]
//
// With no arguments, lints the default engine set relative to the current
// directory (run it from the repository root, as CI does).
package main

import (
	"fmt"
	"os"

	"fliptracker/internal/lint"
)

// defaultDirs is the engine set: every package whose output feeds a golden
// digest, a durable journal, or a byte-identical scheduler contract.
var defaultDirs = []string{
	"internal/campaign",
	"internal/inject",
	"internal/mpi",
	"internal/journal",
	"internal/trace",
	"internal/core",
	"internal/interp",
	"internal/irstatic",
	"internal/coord",
	"internal/server",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	findings, err := lint.Dirs(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ftlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
