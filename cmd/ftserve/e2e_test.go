package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFtserveKillRestartResume is the service acceptance test run against
// the real binary: submit a durable campaign, SIGKILL the server
// mid-campaign, start a fresh ftserve over the same data directory,
// re-submit the same id and spec, and require the delivered stream and
// final result to be FNV-identical to an uninterrupted run's.
func TestFtserveKillRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the ftserve binary")
	}
	bin := buildFtserve(t)
	spec := `{"id":"e2e","app":"kmeans","engine":"inject","seed":20181111,"tests":120,"parallelism":2,"shards":4}`

	// Uninterrupted reference run on its own data dir.
	refURL, refStop := startFtserve(t, bin, t.TempDir())
	submit(t, refURL, spec, http.StatusCreated)
	refLines, refEnd := stream(t, refURL, "e2e")
	refStop()
	if refEnd.State != "done" || len(refLines) != 120 {
		t.Fatalf("reference run: state %q, %d records", refEnd.State, len(refLines))
	}

	// Durable run: SIGKILL the server once a few outcomes are committed.
	dataDir := t.TempDir()
	url, _ := startFtserve(t, bin, dataDir)
	submit(t, url, spec, http.StatusCreated)
	waitProgress(t, url, "e2e", 3)
	killFtserve(t)
	if fi, err := os.Stat(filepath.Join(dataDir, "e2e.journal")); err != nil || fi.Size() == 0 {
		t.Fatalf("no journal survived the kill: %v", err)
	}

	// Restart over the same data dir; the same id+spec resumes the journal.
	url2, stop2 := startFtserve(t, bin, dataDir)
	defer stop2()
	submit(t, url2, spec, http.StatusCreated)
	lines, end := stream(t, url2, "e2e")
	if end.State != "done" {
		t.Fatalf("resumed run state %q (error %q)", end.State, end.Error)
	}
	if digest(lines) != digest(refLines) {
		t.Errorf("resumed stream digest %#x (%d records), reference %#x (%d records)",
			digest(lines), len(lines), digest(refLines), len(refLines))
	}
	if !bytes.Equal(end.Result, refEnd.Result) {
		t.Errorf("resumed result %s, reference %s", end.Result, refEnd.Result)
	}
}

func buildFtserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ftserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var running *exec.Cmd

// startFtserve launches the binary on a fresh loopback port and waits for
// /healthz. The returned stop function shuts it down gracefully; use
// killFtserve for the SIGKILL path.
func startFtserve(t *testing.T, bin, dataDir string) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, "-addr", addr, "-data", dataDir, "-max-running", "1")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	running = cmd
	url := "http://" + addr

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return url, func() {
					cmd.Process.Kill()
					cmd.Wait()
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("ftserve did not become healthy")
	return "", nil
}

func killFtserve(t *testing.T) {
	t.Helper()
	if err := running.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	running.Wait()
}

func submit(t *testing.T, url, spec string, want int) {
	t.Helper()
	resp, err := http.Post(url+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := bufio.NewReader(resp.Body).ReadString(0)
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("POST /campaigns: status %d, want %d: %s", resp.StatusCode, want, body)
	}
}

func waitProgress(t *testing.T, url, id string, done int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Done  int    `json:"done"`
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.Done >= done || st.State == "done" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %d outcomes", id, done)
}

type endLine struct {
	Done   bool            `json:"done"`
	State  string          `json:"state"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func stream(t *testing.T, url, id string) ([]string, endLine) {
	t.Helper()
	resp, err := http.Get(url + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: status %d", resp.StatusCode)
	}
	var lines []string
	var end endLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"done":true`) {
			if err := json.Unmarshal([]byte(line), &end); err != nil {
				t.Fatalf("bad end line %q: %v", line, err)
			}
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, end
}

func digest(lines []string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(strings.Join(lines, "\n")))
	return h.Sum64()
}

// TestFtserveGracefulDrain: SIGTERM makes the server stop accepting work,
// drain, and exit 0.
func TestFtserveGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals the ftserve binary")
	}
	bin := buildFtserve(t)
	url, _ := startFtserve(t, bin, t.TempDir())
	submit(t, url, `{"id":"g1","app":"kmeans","engine":"inject","seed":1,"tests":4}`, http.StatusCreated)
	waitProgress(t, url, "g1", 4)

	cmd := running
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ftserve exited with %v, want clean shutdown", err)
		}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatal("ftserve did not exit after SIGINT")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still serving after shutdown")
	}
}
