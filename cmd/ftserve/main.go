// Command ftserve runs the FlipTracker campaign service: a long-running
// HTTP/JSON server (internal/server) that accepts resilience-campaign
// submissions, executes them through the shard coordinator, and streams
// their deterministic merged outcome streams as NDJSON.
//
// Usage:
//
//	ftserve [-addr :8080] [-data DIR] [-max-running N] [-max-campaigns N] [-drain-timeout D]
//
// With -data, campaigns are journaled under DIR: kill the server
// mid-campaign, restart it, re-submit the same id and spec, and the
// campaign resumes from its last committed outcome. On SIGINT/SIGTERM the
// server stops accepting work, drains running campaigns for -drain-timeout,
// then cancels the stragglers (safe under -data — their journals resume
// them later) and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fliptracker/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "journal directory for durable campaigns (empty: in-memory only)")
	maxRunning := flag.Int("max-running", 2, "campaigns executing concurrently")
	maxCampaigns := flag.Int("max-campaigns", 64, "campaigns tracked at once, finished ones included")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running campaigns")
	flag.Parse()

	if err := run(*addr, *data, *maxRunning, *maxCampaigns, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "ftserve:", err)
		os.Exit(1)
	}
}

func run(addr, data string, maxRunning, maxCampaigns int, drainTimeout time.Duration) error {
	if data != "" {
		if err := os.MkdirAll(data, 0o755); err != nil {
			return err
		}
	}
	svc := server.New(server.Options{
		DataDir:      data,
		MaxRunning:   maxRunning,
		MaxCampaigns: maxCampaigns,
	})
	httpSrv := &http.Server{Addr: addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ftserve: listening on %s (data=%q, max-running=%d)", addr, data, maxRunning)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("ftserve: shutting down, draining campaigns (timeout %s)", drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		log.Printf("ftserve: drain expired, campaigns cancelled: %v", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		httpSrv.Close()
		return err
	}
	log.Printf("ftserve: bye")
	return nil
}
