// Command fliptracker is the interactive front end of the FlipTracker
// reproduction: list workloads, dump disassembly and region tables, collect
// traces, analyze single faults (DDDG + ACL + pattern detection), run
// injection campaigns, and export DDDGs as Graphviz dot.
//
// Usage:
//
//	fliptracker list
//	fliptracker regions  -app cg
//	fliptracker disasm   -app cg [-func conj_grad]
//	fliptracker trace    -app cg -out cg.trace
//	fliptracker rates    -app cg
//	fliptracker inject   -app cg -step 12345 -bit 40 [-kind dst|mem|reg] [-addr N]
//	fliptracker campaign -app cg [-target whole|hybrid|internal|input] [-region cg_b] [-instance 0] [-tests N] [-seed S] [-direct] [-earlystop] [-staticprune] [-stream] [-analyze] [-shards N] [-journal path [-resume]]
//	fliptracker campaign -app mg -mpi -ranks 4 [-faultrank R] [-tests N] [-seed S] [-direct] [-earlystop] [-staticprune] [-stream] [-analyze] [-shards N] [-journal path [-resume]]
//	fliptracker static   -app cg [-disasm]
//	fliptracker dot      -app cg -region cg_b [-instance 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"fliptracker/internal/apps"
	"fliptracker/internal/coord"
	"fliptracker/internal/core"
	"fliptracker/internal/inject"
	"fliptracker/internal/interp"
	"fliptracker/internal/ir"
	"fliptracker/internal/irstatic"
	"fliptracker/internal/mpi"
	"fliptracker/internal/patterns"
	"fliptracker/internal/stats"
	"fliptracker/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList()
	case "regions":
		err = cmdRegions(args)
	case "disasm":
		err = cmdDisasm(args)
	case "trace":
		err = cmdTrace(args)
	case "rates":
		err = cmdRates(args)
	case "inject":
		err = cmdInject(args)
	case "campaign":
		err = cmdCampaign(args)
	case "static":
		err = cmdStatic(args)
	case "dot":
		err = cmdDot(args)
	case "acl":
		err = cmdACL(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fliptracker: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fliptracker:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fliptracker <command> [flags]
commands: list, regions, disasm, trace, rates, inject, campaign, static, dot, acl
run "fliptracker <command> -h" for the command's flags`)
}

func cmdList() error {
	for _, n := range apps.Names() {
		a, _ := apps.Get(n)
		fmt.Printf("%-11s %s\n", n, a.Description)
	}
	return nil
}

func cmdRegions(args []string) error {
	fs := flag.NewFlagSet("regions", flag.ExitOnError)
	app := fs.String("app", "cg", "application name")
	fs.Parse(args)
	an, err := core.NewAnalyzer(*app)
	if err != nil {
		return err
	}
	clean, err := an.CleanTrace()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-9s %-11s %10s %10s\n", "region", "kind", "lines", "instances", "instrs/it0")
	ix := trace.NewSpanIndex(clean)
	for _, r := range an.Prog.Regions {
		kind := "region"
		if r.MainLoop {
			kind = "main-loop"
		}
		inst := ix.Instances(int32(r.ID))
		size := 0
		if len(inst) > 0 {
			size = inst[0].Len()
		}
		fmt.Printf("%-12s %-9s %4d-%-6d %10d %10d\n", r.Name, kind, r.FirstLine, r.LastLine, len(inst), size)
	}
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	app := fs.String("app", "cg", "application name")
	fn := fs.String("func", "", "function name (default: whole program)")
	fs.Parse(args)
	an, err := core.NewAnalyzer(*app)
	if err != nil {
		return err
	}
	if *fn == "" {
		fmt.Print(an.Prog.Disassemble())
		return nil
	}
	d, ok := an.Prog.DisassembleFunc(*fn)
	if !ok {
		return fmt.Errorf("no function %q in %s", *fn, *app)
	}
	fmt.Print(d)
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	app := fs.String("app", "cg", "application name")
	out := fs.String("out", "", "output trace file")
	format := fs.String("format", "gob", "trace format: gob (gzip-compressed) or binary (varint/delta)")
	funcs := fs.String("funcs", "", "comma-separated function names to trace selectively (default: all)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	an, err := core.NewAnalyzer(*app)
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if *funcs == "" {
		tr, err = an.CleanTrace()
		if err != nil {
			return err
		}
	} else {
		// Selective tracing (§V-B): record only the named functions.
		sel := map[int]bool{}
		for _, name := range strings.Split(*funcs, ",") {
			f, ok := an.Prog.FuncByName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("no function %q in %s", name, *app)
			}
			sel[f.Index] = true
		}
		m, err := an.App.NewMachine()
		if err != nil {
			return err
		}
		m.Mode = interp.TraceFull
		m.TraceFuncs = sel
		tr, err = m.Run()
		if err != nil {
			return err
		}
	}
	switch *format {
	case "gob":
		err = tr.WriteFile(*out)
	case "binary":
		err = tr.WriteBinaryFile(*out)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d records (%d dynamic steps, %s format) to %s\n",
		tr.Recs.Len(), tr.Steps, *format, *out)
	return nil
}

func cmdRates(args []string) error {
	fs := flag.NewFlagSet("rates", flag.ExitOnError)
	app := fs.String("app", "cg", "application name")
	fs.Parse(args)
	an, err := core.NewAnalyzer(*app)
	if err != nil {
		return err
	}
	r, err := an.PatternRates()
	if err != nil {
		return err
	}
	names := patterns.FeatureNames()
	for i, v := range r.Vector() {
		fmt.Printf("%-16s %.6g\n", names[i], v)
	}
	return nil
}

func cmdInject(args []string) error {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	app := fs.String("app", "cg", "application name")
	step := fs.Uint64("step", 0, "dynamic step to inject at")
	bit := fs.Int("bit", 40, "bit to flip (0-63)")
	kind := fs.String("kind", "dst", "fault kind: dst, mem, reg")
	addr := fs.Int64("addr", 0, "memory word (kind=mem)")
	reg := fs.Int("reg", 0, "register (kind=reg)")
	fs.Parse(args)
	an, err := core.NewAnalyzer(*app)
	if err != nil {
		return err
	}
	f := interp.Fault{Step: *step, Bit: uint8(*bit)}
	switch *kind {
	case "dst":
		f.Kind = interp.FaultDst
	case "mem":
		f.Kind, f.Addr = interp.FaultMem, *addr
	case "reg":
		f.Kind, f.Reg = interp.FaultReg, ir.Reg(*reg)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	fa, err := an.AnalyzeFault(f)
	if err != nil {
		return err
	}
	fmt.Printf("fault: %s\noutcome: %s\n", f.String(), fa.Outcome)
	fmt.Printf("injection record: %d, control-flow divergence: %d, peak ACL: %d\n",
		fa.ACL.InjectionIndex, fa.ACL.DivergenceIndex, fa.ACL.Peak)
	for _, rr := range fa.Regions {
		fmt.Printf("region %s #%d: inputs corrupted %d, outputs corrupted %d, case1=%v case2=%v ACLdrop=%d\n",
			rr.Region.Name, rr.Instance,
			len(rr.Comparison.CorruptedInputs), len(rr.Comparison.CorruptedOutputs),
			rr.Comparison.Case1, rr.Comparison.Case2, rr.ACLDrop)
		for _, ev := range rr.Patterns.Evidence {
			fmt.Printf("  %-25s line %-5d %-14s %s\n",
				ev.Pattern, ev.Line, trace.Describe(ev.Loc, an.Prog), ev.Note)
		}
	}
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	app := fs.String("app", "cg", "application name")
	region := fs.String("region", "", "region name (for the internal/input targets)")
	instance := fs.Int("instance", 0, "region instance")
	target := fs.String("target", "", "population: whole, hybrid, internal or input (default: whole, or internal when -region is set)")
	tests := fs.Int("tests", 0, "injections (0: statistical sizing at 95%/3%)")
	seed := fs.Int64("seed", 1, "campaign seed")
	direct := fs.Bool("direct", false, "replay every injection from step 0 instead of the checkpointed scheduler")
	earlyStop := fs.Bool("earlystop", false, "stop sequentially once the 95% CI is within 3%")
	staticPrune := fs.Bool("staticprune", false, "skip statically provable faults (benign -> success, never-fires -> not-applied) without running them; results are identical to an unpruned run")
	stream := fs.Bool("stream", false, "print one line per fault outcome as the campaign runs")
	analyze := fs.Bool("analyze", false, "run the full per-fault analysis (ACL, DDDG comparison, patterns) on every injection and stream one line per fault; implies -stream")
	mpiMode := fs.Bool("mpi", false, "run a multi-rank MPI campaign: each injection replays a full world with the fault on one rank")
	ranks := fs.Int("ranks", 4, "MPI world size (with -mpi)")
	faultRank := fs.Int("faultrank", 0, "rank the faults are injected into (with -mpi)")
	journalPath := fs.String("journal", "", "durable journal path: outcomes are committed per fault and a killed campaign resumes from its last committed index")
	resume := fs.Bool("resume", false, "require -journal to already exist and resume it (without -resume, an existing journal is an error)")
	shards := fs.Int("shards", 0, "split the fault-index space into N ranges and run them through the shard coordinator (0: plain in-process run); the merged stream and results are identical either way")
	fs.Parse(args)

	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative")
	}
	if *shards > 0 && *analyze {
		return fmt.Errorf("-shards does not combine with -analyze (the coordinator merges outcome streams, not analysis payloads)")
	}

	// A journaled campaign is resumable by construction; -resume only
	// states intent, so a stale journal can never be continued by accident
	// and a typo'd path can never silently start a fresh campaign.
	if *resume && *journalPath == "" {
		return fmt.Errorf("-resume needs -journal")
	}
	if *journalPath != "" {
		st, err := os.Stat(*journalPath)
		exists := err == nil && st.Size() > 0
		if exists && !*resume {
			return fmt.Errorf("journal %s already exists; pass -resume to continue it", *journalPath)
		}
		if !exists && *resume {
			return fmt.Errorf("journal %s does not exist, nothing to resume", *journalPath)
		}
	}

	// Ctrl-C cancels the campaign; partial results are still reported.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *mpiMode {
		return mpiCampaign(ctx, *app, *ranks, *faultRank, *tests, *seed, *direct, *earlyStop, *staticPrune, *stream, *analyze, *journalPath, *shards)
	}

	an, err := core.NewAnalyzer(*app)
	if err != nil {
		return err
	}
	if *direct {
		an.Scheduler = inject.ScheduleDirect
	}
	var pop core.Population
	switch {
	case *target == "whole" || (*target == "" && *region == ""):
		pop = core.WholeProgram()
	case *target == "hybrid":
		pop = core.Hybrid()
	case *target == "internal" || (*target == "" && *region != ""):
		pop = core.RegionInternal(*region, *instance)
	case *target == "input":
		pop = core.RegionInputs(*region, *instance)
	default:
		return fmt.Errorf("unknown target %q (want whole, hybrid, internal or input)", *target)
	}
	n := *tests
	if n == 0 {
		size, err := an.PopulationSize(pop)
		if err != nil {
			return err
		}
		n = stats.SampleSize(size, 0.95, 0.03)
	}
	copts := []inject.Option{inject.WithTests(n), inject.WithSeed(*seed)}
	if *earlyStop {
		copts = append(copts, inject.WithEarlyStop(0.95, 0.03))
	}
	if *staticPrune {
		if *analyze {
			return fmt.Errorf("-staticprune does not combine with -analyze (pruned faults produce no trace to analyze)")
		}
		pruner, err := an.StaticPruner()
		if err != nil {
			return err
		}
		copts = append(copts, inject.WithStaticPrune(pruner))
	}
	if *journalPath != "" {
		if *analyze {
			return fmt.Errorf("-journal does not combine with -analyze (analysis payloads are not journaled)")
		}
		// A sharded campaign journals its merged stream through the
		// coordinator (same format, same header); the engine journal is for
		// plain in-process runs.
		copts = append(copts, inject.WithJournalApp(*app))
		if *shards == 0 {
			copts = append(copts, inject.WithJournal(*journalPath))
		}
	}

	fmt.Printf("campaign on %s (%s): %d tests\n", *app, pop, n)
	var r inject.Result
	var runErr error
	switch {
	case *analyze:
		// Analyzed campaign: every injection runs fully traced and the
		// complete per-fault analysis streams back in fault-index order.
		var patternCounts [patterns.NumPatterns]int
		i := 0
		for fa, err := range an.StreamAnalysis(ctx, pop, copts...) {
			if err != nil {
				runErr = err
				break
			}
			r.Count(fa.Outcome)
			found := fa.PatternsFound()
			var names []string
			for p := 0; p < patterns.NumPatterns; p++ {
				if found[p] {
					patternCounts[p]++
					names = append(names, patterns.Pattern(p).Short())
				}
			}
			fmt.Printf("#%-6d %-32s -> %-8s peak-ACL %-5d regions %-3d %s\n",
				i, fa.Fault.String(), fa.Outcome, fa.ACL.Peak, len(fa.Regions), strings.Join(names, ","))
			i++
		}
		if r.Tests > 0 {
			fmt.Println("patterns across analyzed faults:")
			for p := 0; p < patterns.NumPatterns; p++ {
				fmt.Printf("  %-25s %d\n", patterns.Pattern(p), patternCounts[p])
			}
		}
	case *shards > 0:
		c, err := an.NewCampaign(pop, copts...)
		if err != nil {
			return err
		}
		h, err := coord.Inject(c)
		if err != nil {
			return err
		}
		co, err := coord.New(h, shardOpts(*shards, *journalPath)...)
		if err != nil {
			return err
		}
		if *stream {
			for fo, err := range co.Stream(ctx) {
				if err != nil {
					runErr = err
					break
				}
				r.Count(fo.Outcome)
				fmt.Printf("#%-6d %-32s -> %s\n", fo.Index, fo.Fault.String(), fo.Outcome)
			}
		} else {
			r, runErr = co.Run(ctx)
		}
	case *stream:
		c, err := an.NewCampaign(pop, copts...)
		if err != nil {
			return err
		}
		for fo, err := range c.Stream(ctx) {
			if err != nil {
				runErr = err
				break
			}
			r.Count(fo.Outcome)
			fmt.Printf("#%-6d %-32s -> %s\n", fo.Index, fo.Fault.String(), fo.Outcome)
		}
	default:
		c, err := an.NewCampaign(pop, copts...)
		if err != nil {
			return err
		}
		r, runErr = c.Run(ctx)
	}
	if runErr != nil {
		fmt.Printf("campaign stopped early (%v); partial results over %d tests:\n", runErr, r.Tests)
	} else if r.Tests < n {
		fmt.Printf("early stop after %d of %d tests (CI within margin):\n", r.Tests, n)
	}
	if r.Tests > 0 {
		fmt.Printf("success %d, failed %d, crashed %d, not-applied %d\n", r.Success, r.Failed, r.Crashed, r.NotApplied)
		ci := stats.ProportionCI(r.SuccessRate(), r.Tests, 0.95)
		fmt.Printf("success rate %.3f ± %.3f (95%% CI), crash rate %.3f\n", r.SuccessRate(), ci, r.CrashRate())
	}
	return runErr
}

// shardOpts maps the CLI's -shards / -journal flags onto coordinator
// options: the coordinator owns the journal for sharded runs so the merged
// stream — not any one shard's — is what resumes.
func shardOpts(shards int, journalPath string) []coord.Option {
	opts := []coord.Option{coord.WithShards(shards)}
	if journalPath != "" {
		opts = append(opts, coord.WithJournal(journalPath))
	}
	return opts
}

// mpiCampaign runs a multi-rank campaign: every injection replays the
// recorded fault-free world with one fault injected into faultRank
// (resuming from a shared world checkpoint unless -direct), and each world
// classifies into a §II-A outcome plus a cross-rank propagation class.
func mpiCampaign(ctx context.Context, app string, ranks, faultRank, tests int, seed int64, direct, earlyStop, staticPrune, stream, analyze bool, journalPath string, shards int) error {
	ma, err := core.NewMPIAnalyzer(app, ranks)
	if err != nil {
		return err
	}
	ma.FaultRank = faultRank
	if direct {
		ma.Scheduler = mpi.ScheduleDirect
	}
	n := tests
	if n == 0 {
		// Whole-program sizing over the injected rank's dynamic trace.
		n = stats.SampleSize(ma.InjectedSteps()*64, 0.95, 0.03)
	}
	copts := []mpi.Option{mpi.WithTests(n), mpi.WithSeed(seed)}
	if earlyStop {
		copts = append(copts, mpi.WithEarlyStop(0.95, 0.03))
	}
	if staticPrune {
		if analyze {
			return fmt.Errorf("-staticprune does not combine with -analyze (pruned worlds produce no traces to analyze)")
		}
		pruner, err := ma.StaticPruner()
		if err != nil {
			return err
		}
		copts = append(copts, mpi.WithStaticPrune(pruner))
	}
	if journalPath != "" {
		if analyze {
			return fmt.Errorf("-journal does not combine with -analyze (analysis payloads are not journaled)")
		}
		copts = append(copts, mpi.WithJournalApp(app))
		if shards == 0 {
			copts = append(copts, mpi.WithJournal(journalPath))
		}
	}
	fmt.Printf("MPI campaign on %s: %d ranks, faults on rank %d, %d tests (%s scheduler)\n",
		app, ranks, faultRank, n, ma.Scheduler)

	var r inject.Result
	propCounts := map[mpi.PropagationClass]int{}
	var runErr error
	switch {
	case analyze:
		var patternCounts [patterns.NumPatterns]int
		i := 0
		for wa, err := range ma.StreamWorldAnalysis(ctx, nil, copts...) {
			if err != nil {
				runErr = err
				break
			}
			r.Count(wa.Outcome)
			propCounts[wa.Propagation.Class]++
			var names []string
			for p := 0; p < patterns.NumPatterns; p++ {
				for _, fa := range wa.Ranks {
					if fa.PatternsFound()[p] {
						patternCounts[p]++
						names = append(names, patterns.Pattern(p).Short())
						break
					}
				}
			}
			fmt.Printf("#%-6d %-32s -> %-8s %-18s inj-rank peak-ACL %-5d %s\n",
				i, wa.Fault.String(), wa.Outcome, wa.Propagation,
				wa.Ranks[faultRank].ACL.Peak, strings.Join(names, ","))
			i++
		}
		if r.Tests > 0 {
			fmt.Println("patterns across analyzed worlds (any rank):")
			for p := 0; p < patterns.NumPatterns; p++ {
				fmt.Printf("  %-25s %d\n", patterns.Pattern(p), patternCounts[p])
			}
		}
	default:
		c, err := ma.NewCampaign(nil, copts...)
		if err != nil {
			return err
		}
		worlds := c.Stream(ctx)
		if shards > 0 {
			h, err := coord.MPI(c)
			if err != nil {
				return err
			}
			co, err := coord.New(h, shardOpts(shards, journalPath)...)
			if err != nil {
				return err
			}
			worlds = co.Stream(ctx)
		}
		for wo, err := range worlds {
			if err != nil {
				runErr = err
				break
			}
			r.Count(wo.Outcome)
			propCounts[wo.Propagation.Class]++
			if stream {
				fmt.Printf("#%-6d %-32s -> %-8s %s\n", wo.Index, wo.Fault.String(), wo.Outcome, wo.Propagation)
			}
		}
	}
	if runErr != nil {
		fmt.Printf("campaign stopped early (%v); partial results over %d tests:\n", runErr, r.Tests)
	}
	if r.Tests > 0 {
		fmt.Printf("success %d, failed %d, crashed %d, not-applied %d\n", r.Success, r.Failed, r.Crashed, r.NotApplied)
		fmt.Printf("propagation: contained %d, propagated %d, world-crash %d\n",
			propCounts[mpi.Contained], propCounts[mpi.Propagated], propCounts[mpi.WorldCrash])
		ci := stats.ProportionCI(r.SuccessRate(), r.Tests, 0.95)
		fmt.Printf("success rate %.3f ± %.3f (95%% CI), crash rate %.3f\n", r.SuccessRate(), ci, r.CrashRate())
	}
	return runErr
}

// cmdStatic reports the whole-program static dependence analysis: how many
// of each function's instruction sites are provably benign (a corrupted
// result cannot reach any output, store, or branch condition), never fire at
// all, or must be treated as live — the static counterpart of a campaign's
// dynamic outcome histogram.
func cmdStatic(args []string) error {
	fs := flag.NewFlagSet("static", flag.ExitOnError)
	app := fs.String("app", "cg", "application name")
	disasm := fs.Bool("disasm", false, "print the annotated disassembly (each instruction tagged live/benign/never-fires) instead of the per-function table")
	fs.Parse(args)
	an, err := core.NewAnalyzer(*app)
	if err != nil {
		return err
	}
	sa, err := an.StaticAnalysis()
	if err != nil {
		return err
	}
	if *disasm {
		fmt.Print(sa.Disassemble())
		return nil
	}
	fmt.Printf("%-16s %8s %8s %8s %12s %9s\n", "function", "sites", "live", "benign", "never-fires", "prunable")
	var tot irstatic.SiteStats
	for _, s := range sa.Stats() {
		tot.Live += s.Live
		tot.Benign += s.Benign
		tot.NeverFires += s.NeverFires
		fmt.Printf("%-16s %8d %8d %8d %12d %8.1f%%\n", s.Func, s.Total(), s.Live, s.Benign, s.NeverFires,
			100*float64(s.Benign+s.NeverFires)/float64(max(s.Total(), 1)))
	}
	fmt.Printf("%-16s %8d %8d %8d %12d %8.1f%%\n", "TOTAL", tot.Total(), tot.Live, tot.Benign, tot.NeverFires,
		100*float64(tot.Benign+tot.NeverFires)/float64(max(tot.Total(), 1)))
	return nil
}

func cmdACL(args []string) error {
	fs := flag.NewFlagSet("acl", flag.ExitOnError)
	app := fs.String("app", "lulesh", "application name")
	step := fs.Uint64("step", 0, "dynamic step to inject at (0: middle of the run)")
	bit := fs.Int("bit", 50, "bit to flip")
	buckets := fs.Int("buckets", 40, "curve resolution")
	fs.Parse(args)
	an, err := core.NewAnalyzer(*app)
	if err != nil {
		return err
	}
	clean, err := an.CleanTrace()
	if err != nil {
		return err
	}
	s := *step
	if s == 0 {
		s = clean.Steps / 2
	}
	fa, err := an.AnalyzeFault(interp.Fault{Step: s, Bit: uint8(*bit), Kind: interp.FaultDst})
	if err != nil {
		return err
	}
	fmt.Printf("fault at step %d bit %d -> outcome %s, peak ACL %d\n", s, *bit, fa.Outcome, fa.ACL.Peak)
	series := fa.ACL.Series
	start := fa.ACL.InjectionIndex
	if start < 0 {
		fmt.Println("no corruption observed (fault never fired or was instantly masked)")
		return nil
	}
	n := len(series) - start
	bk := *buckets
	if n < bk {
		bk = n
	}
	if bk == 0 {
		return nil
	}
	per := n / bk
	if per == 0 {
		per = 1
	}
	for i := 0; i < bk; i++ {
		lo := start + i*per
		hi := lo + per
		if hi > len(series) {
			hi = len(series)
		}
		var mx int32
		for j := lo; j < hi; j++ {
			if series[j] > mx {
				mx = series[j]
			}
		}
		bar := int(mx)
		if bar > 70 {
			bar = 70
		}
		fmt.Printf("%10d %5d %s\n", lo, mx, strings.Repeat("#", bar))
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	app := fs.String("app", "cg", "application name")
	region := fs.String("region", "", "region name")
	instance := fs.Int("instance", 0, "region instance")
	fs.Parse(args)
	if *region == "" {
		return fmt.Errorf("-region is required")
	}
	an, err := core.NewAnalyzer(*app)
	if err != nil {
		return err
	}
	g, err := an.RegionDDDG(*region, *instance)
	if err != nil {
		return err
	}
	fmt.Print(g.DOT(an.Prog, strings.Join([]string{*app, *region}, "_")))
	return nil
}
