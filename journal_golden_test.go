package fliptracker_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"fliptracker"
)

// digestFO renders one streamed fault outcome for FNV comparison.
func digestFO(fo fliptracker.FaultOutcome) string {
	return fmt.Sprintf("#%d %s -> %s", fo.Index, fo.Fault.String(), fo.Outcome)
}

// TestJournalResumeGoldenInject is the acceptance matrix for durable
// single-process campaigns: a journaled campaign killed (Stream break — the
// journal holds exactly the committed prefix) at three distinct fault
// indices resumes, under both schedulers and parallelism 1 and 4, to an
// outcome stream and Result FNV-identical to the uninterrupted run's.
func TestJournalResumeGoldenInject(t *testing.T) {
	const tests = 24
	an, err := fliptracker.NewAnalyzer("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := func(extra ...fliptracker.CampaignOption) []fliptracker.CampaignOption {
		return append([]fliptracker.CampaignOption{
			fliptracker.WithTests(tests), fliptracker.WithSeed(20181111),
		}, extra...)
	}

	// The reference digest: one uninterrupted run.
	var ref []string
	c, err := an.NewCampaign(fliptracker.WholeProgram(), opts()...)
	if err != nil {
		t.Fatal(err)
	}
	for fo, err := range c.Stream(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, digestFO(fo))
	}
	if len(ref) != tests {
		t.Fatalf("reference run streamed %d outcomes, want %d", len(ref), tests)
	}
	want := fnv64(strings.Join(ref, "\n"))
	wantRes, err := an.Campaign(ctx, fliptracker.WholeProgram(), opts()...)
	if err != nil {
		t.Fatal(err)
	}

	for _, sched := range []fliptracker.SchedulerKind{fliptracker.ScheduleCheckpointed, fliptracker.ScheduleDirect} {
		for _, par := range []int{1, 4} {
			for _, kill := range []int{2, 5, 7} {
				name := fmt.Sprintf("%v/par%d/kill%d", sched, par, kill)
				path := filepath.Join(t.TempDir(), "c.journal")
				run := opts(fliptracker.WithJournal(path),
					fliptracker.WithScheduler(sched), fliptracker.WithParallelism(par))

				c, err := an.NewCampaign(fliptracker.WholeProgram(), run...)
				if err != nil {
					t.Fatal(err)
				}
				for fo, err := range c.Stream(ctx) {
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if fo.Index == kill {
						break
					}
				}

				var got []string
				c2, err := an.NewCampaign(fliptracker.WholeProgram(), run...)
				if err != nil {
					t.Fatal(err)
				}
				for fo, err := range c2.Stream(ctx) {
					if err != nil {
						t.Fatalf("%s: resume: %v", name, err)
					}
					got = append(got, digestFO(fo))
				}
				if g := fnv64(strings.Join(got, "\n")); g != want {
					t.Errorf("%s: resumed stream digest %#x, want %#x", name, g, want)
				}

				// A third pass replays the now-complete journal without
				// injecting anything; its Result must match too.
				res, err := an.Campaign(ctx, fliptracker.WholeProgram(), run...)
				if err != nil {
					t.Fatalf("%s: replay: %v", name, err)
				}
				if res != wantRes {
					t.Errorf("%s: replayed Result %+v, want %+v", name, res, wantRes)
				}
			}
		}
	}
}

// TestJournalResumeGoldenMPI is the same acceptance matrix for world
// campaigns: kills at three indices, both schedulers, parallelism 1 and 4,
// resumed outcome stream (world outcome and cross-rank propagation
// included) FNV-identical to the uninterrupted run.
func TestJournalResumeGoldenMPI(t *testing.T) {
	const (
		ranks = 3
		tests = 8
	)
	ma, err := fliptracker.NewMPIAnalyzer("is", ranks)
	if err != nil {
		t.Fatal(err)
	}
	ma.FaultRank = 1
	ctx := context.Background()
	digest := func(wo fliptracker.WorldOutcome) string {
		return fmt.Sprintf("#%d %s -> %s %s", wo.Index, wo.Fault.String(), wo.Outcome, wo.Propagation)
	}
	opts := func(extra ...fliptracker.MPIOption) []fliptracker.MPIOption {
		return append([]fliptracker.MPIOption{
			fliptracker.MPIWithTests(tests), fliptracker.MPIWithSeed(20181111),
		}, extra...)
	}

	var ref []string
	c, err := ma.NewCampaign(nil, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	for wo, err := range c.Stream(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, digest(wo))
	}
	if len(ref) != tests {
		t.Fatalf("reference run streamed %d worlds, want %d", len(ref), tests)
	}
	want := fnv64(strings.Join(ref, "\n"))

	for _, sched := range []fliptracker.SchedulerKind{fliptracker.ScheduleCheckpointed, fliptracker.ScheduleDirect} {
		for _, par := range []int{1, 4} {
			for _, kill := range []int{1, 3, 5} {
				name := fmt.Sprintf("%v/par%d/kill%d", sched, par, kill)
				path := filepath.Join(t.TempDir(), "w.journal")
				run := opts(fliptracker.MPIWithJournal(path),
					fliptracker.MPIWithScheduler(sched), fliptracker.MPIWithParallelism(par))

				c, err := ma.NewCampaign(nil, run...)
				if err != nil {
					t.Fatal(err)
				}
				for wo, err := range c.Stream(ctx) {
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if wo.Index == kill {
						break
					}
				}

				var got []string
				c2, err := ma.NewCampaign(nil, run...)
				if err != nil {
					t.Fatal(err)
				}
				for wo, err := range c2.Stream(ctx) {
					if err != nil {
						t.Fatalf("%s: resume: %v", name, err)
					}
					got = append(got, digest(wo))
				}
				if g := fnv64(strings.Join(got, "\n")); g != want {
					t.Errorf("%s: resumed stream digest %#x, want %#x", name, g, want)
				}
			}
		}
	}
}
