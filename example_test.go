package fliptracker_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"fliptracker"
)

// ExampleAnalyzer_Campaign measures a code region's success rate (Eq. 1)
// over its internal-location population with the v2 campaign API: a typed
// Population plus functional options.
func ExampleAnalyzer_Campaign() {
	an, err := fliptracker.NewAnalyzer("cg")
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.Campaign(context.Background(),
		fliptracker.RegionInternal("cg_b", 0),
		fliptracker.WithTests(1067), // stats.SampleSize at 95%/3%
		fliptracker.WithSeed(1),
		fliptracker.WithEarlyStop(0.95, 0.03))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("success rate %.3f over %d injections\n", res.SuccessRate(), res.Tests)
}

// ExampleCampaign_Stream consumes a campaign fault by fault. Outcomes
// arrive in deterministic fault-index order for a fixed seed, whatever the
// parallelism or scheduler, and breaking out of the loop stops the workers.
func ExampleCampaign_Stream() {
	an, err := fliptracker.NewAnalyzer("cg")
	if err != nil {
		log.Fatal(err)
	}
	c, err := an.NewCampaign(fliptracker.WholeProgram(),
		fliptracker.WithTests(500), fliptracker.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	var res fliptracker.CampaignResult
	for fo, err := range c.Stream(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		res.Count(fo.Outcome)
		if fo.Outcome == fliptracker.Crashed {
			fmt.Printf("fault #%d (%v) crashed the run\n", fo.Index, fo.Fault)
		}
	}
	fmt.Printf("crash rate %.3f\n", res.CrashRate())
}

// ExampleAnalyzer_StreamAnalysis runs an analyzed campaign: every injection
// executes fully traced inside the worker pool and streams back its complete
// fine-grained analysis (ACL table, per-region DDDG comparison, resilience
// patterns), all sharing the analyzer's one CleanIndex. Analyses arrive in
// deterministic fault-index order for a fixed seed.
func ExampleAnalyzer_StreamAnalysis() {
	an, err := fliptracker.NewAnalyzer("cg")
	if err != nil {
		log.Fatal(err)
	}
	var counts [fliptracker.NumPatterns]int
	for fa, err := range an.StreamAnalysis(context.Background(),
		fliptracker.RegionInputs("cg_b", 0),
		fliptracker.WithTests(64),
		fliptracker.WithSeed(1),
		fliptracker.WithParallelism(8)) {
		if err != nil {
			log.Fatal(err)
		}
		if fa.Outcome != fliptracker.Success {
			continue // only tolerated faults reveal resilience patterns
		}
		for p, found := range fa.PatternsFound() {
			if found {
				counts[p]++
			}
		}
	}
	fmt.Printf("data-overwriting tolerated %d faults\n", counts[fliptracker.Overwriting])
}

// ExampleAnalyzer_NewCampaign shows cancellation and progress: campaigns
// stop promptly when their context is cancelled and report a well-formed
// partial result.
func ExampleAnalyzer_NewCampaign() {
	an, err := fliptracker.NewAnalyzer("lulesh")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := an.Campaign(ctx, fliptracker.Hybrid(),
		fliptracker.WithTests(100_000),
		fliptracker.WithProgress(func(done, total int) {
			if done%10_000 == 0 {
				fmt.Printf("%d/%d\n", done, total)
			}
		}))
	if err != nil {
		// context.DeadlineExceeded: res holds the outcomes finished so far.
		fmt.Printf("stopped after %d injections: %v\n", res.Tests, err)
	}
}

// ExampleWithJournal shows a durable campaign: every outcome is committed
// to an append-only checksummed journal before it is delivered, so a
// campaign killed partway — machine crash, OOM kill, Ctrl-C — resumes from
// its last committed fault instead of restarting. Running the same code
// again with the same journal path replays the committed prefix from disk
// and injects only the remainder; the merged Result is byte-identical to an
// uninterrupted run.
func ExampleWithJournal() {
	an, err := fliptracker.NewAnalyzer("cg")
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.Campaign(context.Background(), fliptracker.WholeProgram(),
		fliptracker.WithTests(10_000),
		fliptracker.WithSeed(42),
		fliptracker.WithJournal("cg.journal"))
	if err != nil {
		// A torn tail from a previous kill is truncated automatically; an
		// error here means the journal belongs to a different campaign
		// (fliptracker.ErrJournalMismatch) or its header is damaged
		// (fliptracker.ErrJournalCorruptHeader).
		log.Fatal(err)
	}
	fmt.Printf("success rate %.3f over %d injections\n", res.SuccessRate(), res.Tests)
}
