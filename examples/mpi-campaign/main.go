// MPI-campaign: the paper's multi-rank methodology end to end — record one
// fault-free world, replay it under a fault-injection campaign with every
// fault landing on a single rank, classify each world's outcome (§II-A) and
// how far the corruption spread across ranks, and run the full per-rank
// analysis (ACL, DDDG comparison, pattern detection) on an analyzed world.
//
// Reproduces: §IV-A (per-process traces, single-process injection) and §V-B
// (deterministic replay), scaled from one process to the whole world by the
// MPI campaign engine.
package main

import (
	"context"
	"fmt"
	"log"

	"fliptracker"
)

func main() {
	const ranks = 3

	// One fault-free fully traced world, one CleanIndex per rank.
	ma, err := fliptracker.NewMPIAnalyzer("is", ranks)
	if err != nil {
		log.Fatal(err)
	}
	ma.FaultRank = 1 // "we focus on the single process where the fault is injected"
	fmt.Printf("clean world: %d ranks, rank 1 runs %d dynamic steps\n",
		ranks, ma.InjectedSteps())

	// A plain campaign: worlds replay untraced, outcomes and propagation
	// stream in deterministic fault-index order.
	c, err := ma.NewCampaign(nil,
		fliptracker.MPIWithTests(24),
		fliptracker.MPIWithSeed(20180911),
		fliptracker.MPIWithParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	var agg fliptracker.CampaignResult
	prop := map[fliptracker.PropagationClass]int{}
	for wo, err := range c.Stream(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		agg.Count(wo.Outcome)
		prop[wo.Propagation.Class]++
	}
	fmt.Printf("campaign: success %d, failed %d, crashed %d, not-applied %d\n",
		agg.Success, agg.Failed, agg.Crashed, agg.NotApplied)
	fmt.Printf("propagation: contained %d, propagated %d, world-crash %d\n",
		prop[fliptracker.PropagationContained],
		prop[fliptracker.PropagationPropagated],
		prop[fliptracker.PropagationWorldCrash])

	// The campaign above ran under the default checkpointed world scheduler:
	// injected worlds resume from snapshots cut at collective boundaries
	// instead of replaying every rank from step 0. Results are
	// scheduler-independent — the direct scheduler reproduces the aggregate
	// exactly, it just replays more.
	direct, err := ma.NewCampaign(nil,
		fliptracker.MPIWithTests(24),
		fliptracker.MPIWithSeed(20180911),
		fliptracker.MPIWithScheduler(fliptracker.ScheduleDirect))
	if err != nil {
		log.Fatal(err)
	}
	dagg, err := direct.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct scheduler agrees: %v\n", dagg == agg)

	// An analyzed world: per-rank ACL tables and pattern detection, with
	// the world-level classification on top.
	for wa, err := range ma.StreamWorldAnalysis(context.Background(), nil,
		fliptracker.MPIWithTests(1), fliptracker.MPIWithSeed(7)) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("analyzed world: %s -> %s, %s\n", wa.Fault.String(), wa.Outcome, wa.Propagation)
		for r, fa := range wa.Ranks {
			mark := ""
			if r == wa.FaultRank {
				mark = "  <- fault injected here"
			}
			fmt.Printf("  rank %d: outcome %-11s peak ACL %-4d regions touched %d%s\n",
				r, fa.Outcome, fa.ACL.Peak, len(fa.Regions), mark)
		}
	}
}
