// Predict-resilience: the paper's Use Case 2 (§VII-B, Table IV). Instead of
// an expensive random fault-injection campaign, count the resilience-pattern
// instances in a single fault-free trace and predict the application's
// success rate with a Bayesian linear regression trained on the other
// benchmarks.
//
// Reproduces: Use Case 2, §VII-B / Table IV (pattern-based success-rate
// prediction with leave-one-out validation).
package main

import (
	"context"
	"fmt"
	"log"

	"fliptracker"
)

func main() {
	benchmarks := []string{"cg", "mg", "lu", "bt", "is", "dc", "sp", "ft", "kmeans", "lulesh"}
	const tests = 150 // per-benchmark campaign for the measured rates

	var samples []fliptracker.PredictSample
	fmt.Println("measuring success rates and pattern rates...")
	for _, name := range benchmarks {
		an, err := fliptracker.NewAnalyzer(name)
		if err != nil {
			log.Fatal(err)
		}
		rates, err := an.PatternRates()
		if err != nil {
			log.Fatal(err)
		}
		res, err := an.Campaign(context.Background(), fliptracker.WholeProgram(),
			fliptracker.WithTests(tests), fliptracker.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, fliptracker.PredictSample{
			Name: name, X: rates.Vector(), Y: res.SuccessRate(),
		})
	}

	// Experiment 1: fit all ten and report the R-square (paper: 96.4%).
	model, err := fliptracker.FitPredictor(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R-square of the all-ten fit: %.1f%%\n\n", 100*model.RSquared(samples))

	// Experiment 2: leave-one-out — predict each benchmark from the
	// other nine.
	loo, err := fliptracker.LeaveOneOut(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s %10s %10s %10s\n", "bench", "measured", "predicted", "err")
	for _, r := range loo {
		fmt.Printf("%-9s %10.3f %10.3f %9.1f%%\n", r.Name, r.Measured, r.Predicted, 100*r.ErrRate)
	}
}
