// Region-resilience: the paper's Figure 5 methodology on one application —
// isolated fault injection campaigns per code region, separating faults on
// a region's *input* locations (flipped at region entry) from faults on its
// *internal* computation.
//
// Reproduces: Figure 5 / §V-C (per-region success rates, input vs internal
// populations), using §III-B's isolated region injections.
package main

import (
	"context"
	"fmt"
	"log"

	"fliptracker"
)

func main() {
	ctx := context.Background()
	an, err := fliptracker.NewAnalyzer("mg")
	if err != nil {
		log.Fatal(err)
	}
	app := an.App

	const tests = 200
	fmt.Printf("MG: success rate per code region (%d injections per target)\n", tests)
	fmt.Printf("%-8s %10s %10s\n", "region", "internal", "input")
	for _, region := range app.Regions {
		internal, err := an.Campaign(ctx, fliptracker.RegionInternal(region, 0),
			fliptracker.WithTests(tests), fliptracker.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-8s %10.3f", region, internal.SuccessRate())
		if locs, err := an.RegionInputLocs(region, 0); err == nil && len(locs) > 0 {
			input, err := an.Campaign(ctx, fliptracker.RegionInputs(region, 0),
				fliptracker.WithTests(tests), fliptracker.WithSeed(2))
			if err != nil {
				log.Fatal(err)
			}
			line += fmt.Sprintf(" %10.3f", input.SuccessRate())
		} else {
			line += "        n/a"
		}
		fmt.Println(line)
	}

	// The statistical sizing the paper uses for the real campaigns.
	clean, _ := an.CleanTrace()
	n := fliptracker.SampleSize(clean.Steps*64, 0.95, 0.03)
	fmt.Printf("\n(paper-scale sizing at 95%%/3%% for this population: %d tests per target)\n", n)
}
