// Pattern-guided design: the paper's Use Case 1 (§VII-A, Table III).
// Resilience computation patterns are applied to CG as source-level
// hardenings — sprnvc's global scratch arrays become temporaries with a
// copy-back (dead corrupted locations + data overwriting), and a window of
// the p·q dot product is computed in 32-bit integers (truncation). The
// campaign shows the resilience gain at (nearly) no runtime cost.
//
// Reproduces: Use Case 1, §VII-A / Table III (resilience-aware application
// design guided by the §VI patterns).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fliptracker"
)

func main() {
	ctx := context.Background()
	variants := []struct{ name, label string }{
		{"cg", "baseline"},
		{"cg-dclovw", "DCL + overwriting in sprnvc"},
		{"cg-trunc", "truncation in p.q window"},
		{"cg-all", "all patterns together"},
	}
	const tests = 300

	fmt.Printf("%-32s %10s %12s\n", "variant", "resilience", "runtime")
	var base float64
	for i, v := range variants {
		an, err := fliptracker.NewAnalyzer(v.name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := an.Campaign(ctx, fliptracker.WholeProgram(),
			fliptracker.WithTests(tests), fliptracker.WithSeed(99))
		if err != nil {
			log.Fatal(err)
		}
		// Time one clean run.
		m, err := an.App.NewMachine()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := m.Run(); err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("%-32s %10.3f %12s\n", v.label, res.SuccessRate(), el.Round(time.Microsecond))
		if i == 0 {
			base = res.SuccessRate()
		}
	}
	an, _ := fliptracker.NewAnalyzer("cg-all")
	all, err := an.Campaign(ctx, fliptracker.WholeProgram(),
		fliptracker.WithTests(tests), fliptracker.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	if base > 0 {
		fmt.Printf("\nresilience improvement with all patterns: %+.1f%% (paper reports +32.5%%)\n",
			100*(all.SuccessRate()-base)/base)
	}
}
