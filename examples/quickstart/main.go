// Quickstart: trace a workload, inject one bit flip, and see how FlipTracker
// explains what happened to it — the end-to-end pipeline of the paper's
// Figure 1 in ~50 lines.
//
// Reproduces: Figure 1 / §III (the FlipTracker analysis pipeline: code
// regions, fault injection, DDDG + ACL analysis, pattern extraction).
package main

import (
	"context"
	"fmt"
	"log"

	"fliptracker"
)

func main() {
	// Every workload of the paper's evaluation ships with the library.
	fmt.Println("registered workloads:", fliptracker.Apps())

	// Build the pipeline for NPB CG.
	an, err := fliptracker.NewAnalyzer("cg")
	if err != nil {
		log.Fatal(err)
	}

	// The fault-free run: a full dynamic instruction trace.
	clean, err := an.CleanTrace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free run: %d dynamic instructions, %d trace records\n",
		clean.Steps, clean.Recs.Len())

	// Inject a single bit flip into the destination of the instruction at
	// one third of the run (bit 40 — a mantissa bit of a double).
	fault := fliptracker.Fault{
		Step: clean.Steps / 3,
		Bit:  40,
		Kind: fliptracker.FaultDst,
	}
	fa, err := an.AnalyzeFault(fault)
	if err != nil {
		log.Fatal(err)
	}

	// The three §II-A manifestations: success / verification failed /
	// crashed.
	fmt.Printf("fault %v -> outcome: %v\n", fault, fa.Outcome)
	fmt.Printf("corruption first visible at trace record %d; peak alive corrupted locations: %d\n",
		fa.ACL.InjectionIndex, fa.ACL.Peak)

	// Which code regions the corruption touched, and which resilience
	// computation patterns acted in each.
	for _, rr := range fa.Regions {
		fmt.Printf("region %s (instance %d): %d corrupted inputs, %d corrupted outputs\n",
			rr.Region.Name, rr.Instance,
			len(rr.Comparison.CorruptedInputs), len(rr.Comparison.CorruptedOutputs))
		for _, ev := range rr.Patterns.Evidence {
			fmt.Printf("  pattern %-24s %s\n", ev.Pattern, ev.Note)
		}
	}

	// One fault explains a single run; a campaign measures the success
	// rate (Eq. 1) over a whole population. Stream the outcomes fault by
	// fault — deterministic order for a fixed seed, cancellable via ctx.
	c, err := an.NewCampaign(fliptracker.WholeProgram(),
		fliptracker.WithTests(60), fliptracker.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	var res fliptracker.CampaignResult
	for fo, err := range c.Stream(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		res.Count(fo.Outcome)
	}
	fmt.Printf("campaign over %d uniform flips: success rate %.2f, crash rate %.2f\n",
		res.Tests, res.SuccessRate(), res.CrashRate())

	// Raw outcomes answer "how often does it survive"; an *analyzed*
	// campaign answers "why". StreamAnalysis runs the full per-fault
	// pipeline (ACL + DDDG comparison + pattern detection) inside the
	// campaign worker pool, sharing the clean-run index built above —
	// FlipTracker-style insight at campaign scale.
	var tolerated int
	var patternCount [fliptracker.NumPatterns]int
	for fa, err := range an.StreamAnalysis(context.Background(),
		fliptracker.RegionInputs("cg_b", 0),
		fliptracker.WithTests(24), fliptracker.WithSeed(1)) {
		if err != nil {
			log.Fatal(err)
		}
		if fa.Outcome != fliptracker.Success {
			continue
		}
		tolerated++
		for p, found := range fa.PatternsFound() {
			if found {
				patternCount[p]++
			}
		}
	}
	fmt.Printf("analyzed campaign on cg_b inputs: %d faults tolerated; overwriting acted in %d, repeated additions in %d\n",
		tolerated, patternCount[fliptracker.Overwriting], patternCount[fliptracker.RepeatedAddition])
}
