// ACL-curve: reproduce the paper's Figure 7 view interactively — inject a
// fault into LULESH's hourglass-force temporaries and plot (as ASCII) how
// the number of alive corrupted locations rises while the corruption
// spreads through hourgam/hxx/hgfz and collapses when the temporaries die.
//
// Reproduces: Figure 7 / §III-C (alive corrupted locations) and §VI-A (the
// dead-corrupted-locations pattern in LULESH).
package main

import (
	"fmt"
	"log"
	"strings"

	"fliptracker"
)

func main() {
	an, err := fliptracker.NewAnalyzer("lulesh")
	if err != nil {
		log.Fatal(err)
	}
	clean, err := an.CleanTrace()
	if err != nil {
		log.Fatal(err)
	}

	// Fault in the middle of the run, into an instruction result.
	fa, err := an.AnalyzeFault(fliptracker.Fault{
		Step: clean.Steps / 2,
		Bit:  50,
		Kind: fliptracker.FaultDst,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outcome: %v, peak ACL: %d\n\n", fa.Outcome, fa.ACL.Peak)

	series := fa.ACL.Series
	start := fa.ACL.InjectionIndex
	if start < 0 {
		fmt.Println("the fault left no trace (it never fired or was instantly masked)")
		return
	}
	// Down-sample the tail of the series into 40 buckets of max values.
	n := len(series) - start
	buckets := 40
	if n < buckets {
		buckets = n
	}
	per := n / buckets
	if per == 0 {
		per = 1
	}
	fmt.Println("alive corrupted locations after injection:")
	for b := 0; b < buckets; b++ {
		lo := start + b*per
		hi := lo + per
		if hi > len(series) {
			hi = len(series)
		}
		var mx int32
		for i := lo; i < hi; i++ {
			if series[i] > mx {
				mx = series[i]
			}
		}
		bar := int(mx)
		if bar > 70 {
			bar = 70
		}
		fmt.Printf("%9d |%s %d\n", lo, strings.Repeat("#", bar), mx)
	}
}
