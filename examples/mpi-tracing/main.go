// MPI-tracing: the paper's parallel tracing workflow (§IV-A) end to end —
// run an SPMD workload across simulated ranks, inject a fault into exactly
// one rank, collect one trace file per MPI process, and verify that
// record-and-replay reproduces wildcard-receive order (§V-B's answer to MPI
// nondeterminism).
//
// Reproduces: §IV-A (per-process trace collection) and §V-B (deterministic
// replay of MPI nondeterminism), the substrate behind Figure 4.
package main

import (
	"fmt"
	"log"
	"os"

	"fliptracker/internal/apps"
	"fliptracker/internal/interp"
	"fliptracker/internal/mpi"
)

func main() {
	a, ok := apps.Get("mg")
	if !ok {
		log.Fatal("mg not registered")
	}
	prog, err := a.MPIProgram()
	if err != nil {
		log.Fatal(err)
	}

	const ranks = 4

	// Fault-free run with full per-rank tracing.
	clean, err := mpi.Run(prog, mpi.Config{
		Ranks: ranks,
		Mode:  interp.TraceFull,
		Seed:  apps.DefaultSeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free world: status %v\n", clean.Status())
	for _, rr := range clean.Ranks {
		fmt.Printf("  rank %d: %d dynamic steps, %d trace records\n",
			rr.Rank, rr.Trace.Steps, rr.Trace.Recs.Len())
	}

	// One trace file per MPI process, exactly like the extended
	// LLVM-Tracer.
	dir, err := os.MkdirTemp("", "fliptracker-ranks-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths, err := clean.WriteRankTraces(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d per-rank trace files under %s\n", len(paths), dir)

	// Faulty run: a single bit flip on rank 2 only. The paper focuses the
	// analysis on the process where the fault was injected.
	faulty, err := mpi.Run(prog, mpi.Config{
		Ranks:     ranks,
		Seed:      apps.DefaultSeed,
		FaultRank: 2,
		Fault:     &interp.Fault{Step: 20_000, Bit: 44, Kind: interp.FaultDst},
		Replay:    clean.Recording, // deterministic matching vs the clean run
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faulty world: status %v\n", faulty.Status())
	for _, rr := range faulty.Ranks {
		mark := ""
		if rr.Rank == 2 {
			mark = "  <- fault injected here"
		}
		fmt.Printf("  rank %d: %d outputs%s\n", rr.Rank, len(rr.Trace.Output), mark)
	}
}
